// Package vindex implements the paged flat vector index that backs
// knn(attr, vec, k) atomic filters: for each vector-typed attribute, a
// compact list of (reverse-DN key, master offset, embedding) postings
// in reverse-DN key order, stored as a plist byte stream on the store's
// pager.Disk.
//
// The key order is the whole design. Because an ancestor's reverse-DN
// key is a prefix of its descendants' keys, the postings of any subtree
// form one contiguous range of the list — exactly the property the
// master list has for entries — so a scoped knn search reads only the
// pages overlapping the scope, located through a sparse in-memory fence
// array (one (key, offset) pair every fenceEvery postings). Every page
// the search touches goes through a pager read handle carrying the
// query's meter, so per-operator I/O accounting stays exact.
//
// The index is exact, not approximate: Search scans every posting in
// the range and keeps the k nearest by squared L2 distance, ties broken
// by reverse-DN key. Results are therefore byte-identical to a
// brute-force scan over the scoped entry set, which is the correctness
// oracle the store's evaluation tests pin.
//
// Like the B+trees it lives beside, the index is immutable once built:
// core.Update rebuilds it on the next snapshot's fresh disk, and the
// snapshot manifest round-trips it through Checkpoint/Recover (the
// postings travel inside the disk image; Manifest carries the page
// list, fences and dimension).
package vindex

import (
	"errors"
	"fmt"
	"io"
	"math"
	"sort"

	"repro/internal/pager"
	"repro/internal/plist"
)

// fenceEvery is the sparse-index granularity: one fence per this many
// postings. A seek over-reads at most the postings between two fences.
const fenceEvery = 16

// Posting is one entry's contribution to the index: its reverse-DN key,
// its master-list stream offset (so winners can be fetched without a
// DN-index probe), and all the entry's vectors for the indexed
// attribute (multi-valued attributes contribute several; an entry's
// distance to a query is the minimum over them).
type Posting struct {
	// Key is the entry's reverse-DN key.
	Key string
	// Off is the entry's master-list stream offset.
	Off int64
	// Vecs holds the entry's embeddings for the indexed attribute, each
	// of the index's dimension.
	Vecs [][]float32
}

// Index is an immutable flat vector index over one attribute.
type Index struct {
	attr   string
	dim    int
	list   *plist.List
	fenceK []string // fence keys, ascending
	fenceO []int64  // stream offset of the fenced posting
}

// Attr returns the indexed attribute name.
func (ix *Index) Attr() string { return ix.attr }

// Dim returns the embedding dimension.
func (ix *Index) Dim() int { return ix.dim }

// Count returns the number of postings (entries with the attribute).
func (ix *Index) Count() int64 { return ix.list.Count() }

// Pages returns the number of disk pages the posting list occupies.
func (ix *Index) Pages() int { return ix.list.Pages() }

// Bytes returns the posting stream's total length.
func (ix *Index) Bytes() int64 { return ix.list.Size() }

// Free releases the index's pages back to the device.
func (ix *Index) Free() error { return ix.list.Free() }

// Builder accumulates postings in ascending key order and writes the
// paged list. One Builder exists per vector attribute during a store
// build; Add is called once per entry holding the attribute, in master
// order, so the posting list inherits the master list's key order.
type Builder struct {
	attr   string
	dim    int
	w      *plist.Writer
	fenceK []string
	fenceO []int64
	n      int64
	last   string
	err    error
}

// NewBuilder starts an index for attr with embedding dimension dim on
// disk.
func NewBuilder(disk *pager.Disk, attr string, dim int) *Builder {
	return &Builder{attr: attr, dim: dim, w: plist.NewWriter(disk)}
}

// Add appends one entry's posting. Keys must be strictly increasing
// (one posting per entry, master order); vectors of a dimension other
// than the index's are rejected.
func (b *Builder) Add(key string, off int64, vecs [][]float32) error {
	if b.err != nil {
		return b.err
	}
	if b.n > 0 && key <= b.last {
		b.err = fmt.Errorf("vindex: unsorted add: %q after %q", key, b.last)
		return b.err
	}
	if len(vecs) == 0 {
		return nil
	}
	aux := make([]int64, 0, len(vecs)*b.dim)
	for _, v := range vecs {
		if len(v) != b.dim {
			b.err = fmt.Errorf("vindex: %s vector has %d components, index dimension is %d", b.attr, len(v), b.dim)
			return b.err
		}
		for _, f := range v {
			aux = append(aux, int64(math.Float32bits(f)))
		}
	}
	if b.n%fenceEvery == 0 {
		b.fenceK = append(b.fenceK, key)
		b.fenceO = append(b.fenceO, b.w.Offset())
	}
	if err := b.w.Append(&plist.Record{Key: key, A: off, Aux: aux}); err != nil {
		b.err = err
		return err
	}
	b.n++
	b.last = key
	return nil
}

// Close finishes the list and returns the completed index.
func (b *Builder) Close() (*Index, error) {
	if b.err != nil {
		return nil, b.err
	}
	l, err := b.w.Close()
	if err != nil {
		return nil, err
	}
	return &Index{attr: b.attr, dim: b.dim, list: l, fenceK: b.fenceK, fenceO: b.fenceO}, nil
}

// SquaredL2 returns the squared Euclidean distance between two vectors
// of equal length, accumulated in float64 in component order. Both the
// index search and the brute-force oracle call this one function, which
// is what makes their distances — and hence their tie-breaks and final
// answers — bit-identical.
func SquaredL2(a, b []float32) float64 {
	var sum float64
	for i := range a {
		d := float64(a[i]) - float64(b[i])
		sum += d * d
	}
	return sum
}

// Neighbor is one knn result: an entry key, its master offset, and its
// squared L2 distance to the query vector.
type Neighbor struct {
	// Key is the entry's reverse-DN key.
	Key string
	// Off is the entry's master-list stream offset.
	Off int64
	// Dist is the squared L2 distance to the query vector (the minimum
	// over the entry's vectors for multi-valued attributes).
	Dist float64
}

// ErrDim reports a query vector whose dimension does not match the
// index.
var ErrDim = errors.New("vindex: query dimension mismatch")

// Search returns the k postings in the key range [lo, hi) nearest to q,
// ordered by (distance, key) ascending. hi == "" means unbounded. An
// optional accept callback further filters candidates by key (the
// one-level scope test); nil accepts everything. Page reads are charged
// to m (nil = uncharged). Fewer than k results means the range held
// fewer candidates.
func (ix *Index) Search(lo, hi string, accept func(key string) bool, q []float32, k int, m *pager.Meter) ([]Neighbor, error) {
	if len(q) != ix.dim {
		return nil, fmt.Errorf("%w: query has %d components, index %q has %d", ErrDim, len(q), ix.attr, ix.dim)
	}
	if k < 1 || ix.list.Count() == 0 {
		return nil, nil
	}
	off := ix.seek(lo)
	rd, err := ix.list.MeteredReaderAt(off, m)
	if err != nil {
		return nil, err
	}
	top := NewCollector(k)
	for {
		rec, err := rd.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		if rec.Key < lo {
			continue // fence over-read before the range
		}
		if hi != "" && rec.Key >= hi {
			break
		}
		if accept != nil && !accept(rec.Key) {
			continue
		}
		dist, ok := ix.minDist(rec, q)
		if !ok {
			continue
		}
		top.Offer(Neighbor{Key: rec.Key, Off: rec.A, Dist: dist})
	}
	return top.Sorted(), nil
}

// minDist decodes a posting's vectors and returns the minimum squared
// L2 distance to q. ok is false for a malformed posting payload (wrong
// multiple of the dimension), which cannot happen through Builder.
func (ix *Index) minDist(rec *plist.Record, q []float32) (float64, bool) {
	if len(rec.Aux) == 0 || len(rec.Aux)%ix.dim != 0 {
		return 0, false
	}
	vec := make([]float32, ix.dim)
	best := math.Inf(1)
	for base := 0; base < len(rec.Aux); base += ix.dim {
		for i := 0; i < ix.dim; i++ {
			vec[i] = math.Float32frombits(uint32(rec.Aux[base+i]))
		}
		if d := SquaredL2(vec, q); d < best {
			best = d
		}
	}
	return best, true
}

// seek returns the stream offset of the latest fence at or before lo —
// the position from which a forward scan reaches the first posting with
// key >= lo after at most fenceEvery-1 skipped postings.
func (ix *Index) seek(lo string) int64 {
	i := sort.SearchStrings(ix.fenceK, lo)
	// fenceK[i] is the first fence >= lo; start one fence earlier unless
	// the fence key equals lo exactly.
	if i == len(ix.fenceK) || ix.fenceK[i] != lo {
		i--
	}
	if i < 0 {
		return 0
	}
	return ix.fenceO[i]
}

// RangeBytes estimates the posting-stream byte extent of the key range
// [lo, hi) from the fence array, for access-path cost comparison. The
// estimate errs high by up to two fence intervals.
func (ix *Index) RangeBytes(lo, hi string) int64 {
	start := ix.seek(lo)
	end := ix.list.Size()
	if hi != "" {
		if i := sort.SearchStrings(ix.fenceK, hi); i < len(ix.fenceO) {
			end = ix.fenceO[i]
		}
	}
	if end < start {
		return 0
	}
	return end - start
}

// Collector keeps the k best neighbors seen so far in a max-heap
// ordered by (distance, key): the root is the current worst, so a
// better candidate replaces it in O(log k). Both the index search and
// the store's brute-force scan accumulate through it, which pins one
// tie-break order for both access paths.
type Collector struct {
	k    int
	heap []Neighbor
}

// NewCollector returns an empty top-k accumulator.
func NewCollector(k int) *Collector { return &Collector{k: k} }

// worse reports whether a ranks after b: larger distance, or equal
// distance and larger key. The order is total because keys are unique.
func worse(a, b Neighbor) bool {
	if a.Dist != b.Dist {
		return a.Dist > b.Dist
	}
	return a.Key > b.Key
}

// Offer considers one candidate, keeping it iff it ranks among the k
// best seen.
func (t *Collector) Offer(n Neighbor) {
	if len(t.heap) < t.k {
		t.heap = append(t.heap, n)
		i := len(t.heap) - 1
		for i > 0 {
			p := (i - 1) / 2
			if !worse(t.heap[i], t.heap[p]) {
				break
			}
			t.heap[i], t.heap[p] = t.heap[p], t.heap[i]
			i = p
		}
		return
	}
	if !worse(t.heap[0], n) {
		return // candidate is no better than the current worst
	}
	t.heap[0] = n
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		w := i
		if l < len(t.heap) && worse(t.heap[l], t.heap[w]) {
			w = l
		}
		if r < len(t.heap) && worse(t.heap[r], t.heap[w]) {
			w = r
		}
		if w == i {
			return
		}
		t.heap[i], t.heap[w] = t.heap[w], t.heap[i]
		i = w
	}
}

// Sorted returns the collected neighbors in (distance, key) ascending
// order.
func (t *Collector) Sorted() []Neighbor {
	out := append([]Neighbor(nil), t.heap...)
	sort.Slice(out, func(i, j int) bool { return worse(out[j], out[i]) })
	return out
}
