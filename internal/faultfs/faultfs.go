// Package faultfs is the storage twin of internal/faultnet: a
// fault-injecting pager.FileSystem wrapper that simulates the ways real
// disks betray a commit protocol — torn writes that persist only a
// prefix, short writes, fsync calls that fail after dirtying the page
// cache, silent bit-rot, outright write errors, and a filling disk
// (ENOSPC). internal/durable's crash and corruption tests drive their
// commit paths through this wrapper to prove the recovery ladder never
// serves a torn or silently corrupted generation.
//
// All injection is deterministic in Config.Seed, so a failing test
// reproduces from its seed alone.
package faultfs

import (
	"errors"
	"math/rand"
	"sync"

	"repro/internal/pager"
)

// Injected faults surface as (or wrap) these sentinels.
var (
	// ErrInjected marks a synthetic I/O failure (torn write, short
	// write, failed fsync, write error).
	ErrInjected = errors.New("faultfs: injected fault")
	// ErrNoSpace marks writes rejected after the configured byte budget
	// is spent — the simulated full disk.
	ErrNoSpace = errors.New("faultfs: no space left on device")
)

// Config sets per-operation fault probabilities (0 disables each).
// Probabilities are evaluated independently per call with a
// deterministic PRNG.
type Config struct {
	// Seed keys the PRNG (0 means 1, so the zero Config stays
	// deterministic).
	Seed int64
	// TornWrite is the probability that a WriteAt persists only a
	// random prefix of its data and then fails — the classic torn page
	// a crash mid-write leaves behind.
	TornWrite float64
	// ShortWrite is the probability that a WriteAt persists a random
	// prefix and reports the short count with ErrInjected (an
	// interrupted write the caller can see).
	ShortWrite float64
	// SyncErr is the probability that a Sync (or SyncRoot) fails. The
	// data's durability is then unknown — exactly the contract real
	// fsync failures void.
	SyncErr float64
	// BitRot is the probability that a WriteAt persists all bytes but
	// flips one bit — silent media corruption that only checksums
	// catch.
	BitRot float64
	// WriteErr is the probability that a WriteAt fails without
	// persisting anything.
	WriteErr float64
	// ENOSPCAfter, when positive, is the total number of bytes that may
	// be written through this filesystem before every further WriteAt
	// fails with ErrNoSpace.
	ENOSPCAfter int64
}

// Stats counts injected faults by kind.
type Stats struct {
	TornWrites  int64
	ShortWrites int64
	SyncErrs    int64
	BitRots     int64
	WriteErrs   int64
	NoSpace     int64
}

// FS wraps an inner pager.FileSystem with fault injection. Safe for
// concurrent use.
type FS struct {
	inner pager.FileSystem
	cfg   Config

	mu      sync.Mutex
	rng     *rand.Rand
	written int64
	stats   Stats
}

// Wrap decorates inner with fault injection per cfg.
func Wrap(inner pager.FileSystem, cfg Config) *FS {
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	return &FS{inner: inner, cfg: cfg, rng: rand.New(rand.NewSource(seed))}
}

// Stats snapshots the injected-fault counters.
func (fs *FS) Stats() Stats {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.stats
}

// roll draws one uniform variate under the lock.
func (fs *FS) roll() float64 {
	return fs.rng.Float64()
}

// intn draws a uniform int in [0, n) under the lock (n > 0).
func (fs *FS) intn(n int) int {
	return fs.rng.Intn(n)
}

// Create opens a fault-injecting writable file.
func (fs *FS) Create(name string) (pager.BlockFile, error) {
	f, err := fs.inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &file{fs: fs, f: f}, nil
}

// Open opens a fault-injecting readable file (reads pass through; the
// injected corruption happened at write time, as on real media).
func (fs *FS) Open(name string) (pager.BlockFile, error) {
	f, err := fs.inner.Open(name)
	if err != nil {
		return nil, err
	}
	return &file{fs: fs, f: f}, nil
}

// Rename passes through: the atomic rename is the one primitive the
// commit protocol is allowed to trust (a crash before SyncRoot may
// still undo it, which the kill -9 harness exercises for real).
func (fs *FS) Rename(oldname, newname string) error { return fs.inner.Rename(oldname, newname) }

// Remove passes through.
func (fs *FS) Remove(name string) error { return fs.inner.Remove(name) }

// List passes through.
func (fs *FS) List() ([]string, error) { return fs.inner.List() }

// Size passes through.
func (fs *FS) Size(name string) (int64, error) { return fs.inner.Size(name) }

// SyncRoot fails with ErrInjected at the SyncErr probability, else
// passes through.
func (fs *FS) SyncRoot() error {
	fs.mu.Lock()
	if fs.cfg.SyncErr > 0 && fs.roll() < fs.cfg.SyncErr {
		fs.stats.SyncErrs++
		fs.mu.Unlock()
		return errors.Join(ErrInjected, errors.New("fsync dir failed"))
	}
	fs.mu.Unlock()
	return fs.inner.SyncRoot()
}

// file decorates one BlockFile with the write-path faults.
type file struct {
	fs *FS
	f  pager.BlockFile
}

func (w *file) ReadAt(p []byte, off int64) (int, error) { return w.f.ReadAt(p, off) }

func (w *file) WriteAt(p []byte, off int64) (int, error) {
	fs := w.fs
	fs.mu.Lock()
	if fs.cfg.ENOSPCAfter > 0 && fs.written+int64(len(p)) > fs.cfg.ENOSPCAfter {
		fs.stats.NoSpace++
		fs.mu.Unlock()
		return 0, ErrNoSpace
	}
	switch {
	case fs.cfg.WriteErr > 0 && fs.roll() < fs.cfg.WriteErr:
		fs.stats.WriteErrs++
		fs.mu.Unlock()
		return 0, errors.Join(ErrInjected, errors.New("write failed"))
	case fs.cfg.TornWrite > 0 && len(p) > 0 && fs.roll() < fs.cfg.TornWrite:
		fs.stats.TornWrites++
		n := fs.intn(len(p))
		fs.written += int64(n)
		fs.mu.Unlock()
		_, _ = w.f.WriteAt(p[:n], off) // the torn prefix persists
		return 0, errors.Join(ErrInjected, errors.New("torn write"))
	case fs.cfg.ShortWrite > 0 && len(p) > 1 && fs.roll() < fs.cfg.ShortWrite:
		fs.stats.ShortWrites++
		n := 1 + fs.intn(len(p)-1)
		fs.written += int64(n)
		fs.mu.Unlock()
		nn, _ := w.f.WriteAt(p[:n], off)
		return nn, errors.Join(ErrInjected, errors.New("short write"))
	case fs.cfg.BitRot > 0 && len(p) > 0 && fs.roll() < fs.cfg.BitRot:
		fs.stats.BitRots++
		i, bit := fs.intn(len(p)), fs.intn(8)
		fs.written += int64(len(p))
		fs.mu.Unlock()
		rotted := make([]byte, len(p))
		copy(rotted, p)
		rotted[i] ^= 1 << bit
		return w.f.WriteAt(rotted, off) // caller sees success; media lies
	}
	fs.written += int64(len(p))
	fs.mu.Unlock()
	return w.f.WriteAt(p, off)
}

func (w *file) Sync() error {
	fs := w.fs
	fs.mu.Lock()
	if fs.cfg.SyncErr > 0 && fs.roll() < fs.cfg.SyncErr {
		fs.stats.SyncErrs++
		fs.mu.Unlock()
		return errors.Join(ErrInjected, errors.New("fsync failed"))
	}
	fs.mu.Unlock()
	return w.f.Sync()
}

func (w *file) Truncate(size int64) error { return w.f.Truncate(size) }

func (w *file) Close() error { return w.f.Close() }
