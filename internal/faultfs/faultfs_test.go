package faultfs

import (
	"errors"
	"io"
	"testing"

	"repro/internal/pager"
)

func newFS(t *testing.T, cfg Config) *FS {
	t.Helper()
	inner, err := pager.DirFS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return Wrap(inner, cfg)
}

func TestPassThroughWhenQuiet(t *testing.T) {
	fs := newFS(t, Config{})
	f, err := fs.Create("x")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("abc"), 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if s := fs.Stats(); s != (Stats{}) {
		t.Fatalf("quiet config injected faults: %+v", s)
	}
}

func TestTornWritePersistsPrefixOnly(t *testing.T) {
	fs := newFS(t, Config{Seed: 7, TornWrite: 1})
	f, err := fs.Create("x")
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("0123456789abcdef")
	_, werr := f.WriteAt(data, 0)
	if !errors.Is(werr, ErrInjected) {
		t.Fatalf("torn write err = %v, want ErrInjected", werr)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	n, err := fs.Size("x")
	if err != nil {
		t.Fatal(err)
	}
	if n >= int64(len(data)) {
		t.Fatalf("torn write persisted %d bytes, want < %d", n, len(data))
	}
	if fs.Stats().TornWrites != 1 {
		t.Fatalf("stats: %+v", fs.Stats())
	}
}

func TestBitRotFlipsExactlyOneBit(t *testing.T) {
	fs := newFS(t, Config{Seed: 3, BitRot: 1})
	f, err := fs.Create("x")
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("checksums catch this")
	if _, err := f.WriteAt(data, 0); err != nil {
		t.Fatalf("bit rot must look like success: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := fs.Open("x")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	back := make([]byte, len(data))
	if _, err := r.ReadAt(back, 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	diffBits := 0
	for i := range data {
		b := data[i] ^ back[i]
		for ; b != 0; b &= b - 1 {
			diffBits++
		}
	}
	if diffBits != 1 {
		t.Fatalf("bit rot flipped %d bits, want exactly 1", diffBits)
	}
}

func TestENOSPCBudget(t *testing.T) {
	fs := newFS(t, Config{ENOSPCAfter: 10})
	f, err := fs.Create("x")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt(make([]byte, 8), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt(make([]byte, 8), 8); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("over-budget write err = %v, want ErrNoSpace", err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if fs.Stats().NoSpace != 1 {
		t.Fatalf("stats: %+v", fs.Stats())
	}
}

func TestSyncErr(t *testing.T) {
	fs := newFS(t, Config{Seed: 11, SyncErr: 1})
	f, err := fs.Create("x")
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("Sync err = %v, want ErrInjected", err)
	}
	if err := fs.SyncRoot(); !errors.Is(err, ErrInjected) {
		t.Fatalf("SyncRoot err = %v, want ErrInjected", err)
	}
	_ = f.Close()
}

func TestDeterministicInSeed(t *testing.T) {
	run := func() Stats {
		fs := newFS(t, Config{Seed: 42, TornWrite: 0.3, ShortWrite: 0.3, WriteErr: 0.2})
		f, err := fs.Create("x")
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 50; i++ {
			_, _ = f.WriteAt([]byte("payload payload"), int64(i*16))
		}
		_ = f.Close()
		return fs.Stats()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed, different faults: %+v vs %+v", a, b)
	}
}
