// Package strindex provides the string-value indexes Section 4.1 of
// "Querying Network Directories" assumes for wildcard filters: "trie and
// suffix tree indices [23] for string filters". A Trie answers prefix
// queries (patterns like jag*); a SuffixIndex — a suffix array, the
// compact modern stand-in for McCreight's suffix trees — answers
// substring queries (patterns like *jag*). Both index the distinct
// values of one attribute; the directory store maps the surviving values
// back to entries through its B+tree attribute index.
package strindex

// Trie is a byte-wise trie over a set of strings, supporting exact
// membership and prefix enumeration.
type Trie struct {
	root trieNode
	n    int
}

type trieNode struct {
	children map[byte]*trieNode
	terminal bool
}

// NewTrie returns an empty trie.
func NewTrie() *Trie { return &Trie{} }

// Len returns the number of distinct strings inserted.
func (t *Trie) Len() int { return t.n }

// Insert adds s to the set. Duplicate inserts are no-ops.
func (t *Trie) Insert(s string) {
	nd := &t.root
	for i := 0; i < len(s); i++ {
		if nd.children == nil {
			nd.children = make(map[byte]*trieNode)
		}
		next := nd.children[s[i]]
		if next == nil {
			next = &trieNode{}
			nd.children[s[i]] = next
		}
		nd = next
	}
	if !nd.terminal {
		nd.terminal = true
		t.n++
	}
}

// Contains reports exact membership of s.
func (t *Trie) Contains(s string) bool {
	nd := t.descend(s)
	return nd != nil && nd.terminal
}

func (t *Trie) descend(s string) *trieNode {
	nd := &t.root
	for i := 0; i < len(s); i++ {
		next := nd.children[s[i]]
		if next == nil {
			return nil
		}
		nd = next
	}
	return nd
}

// WalkPrefix calls fn for every stored string beginning with prefix, in
// lexicographic order, stopping early if fn returns false.
func (t *Trie) WalkPrefix(prefix string, fn func(s string) bool) {
	nd := t.descend(prefix)
	if nd == nil {
		return
	}
	walk(nd, []byte(prefix), fn)
}

func walk(nd *trieNode, acc []byte, fn func(string) bool) bool {
	if nd.terminal {
		if !fn(string(acc)) {
			return false
		}
	}
	// Children visited in byte order for deterministic output.
	for c := 0; c < 256; c++ {
		next := nd.children[byte(c)]
		if next == nil {
			continue
		}
		if !walk(next, append(acc, byte(c)), fn) {
			return false
		}
	}
	return true
}
