package strindex

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestTrieBasics(t *testing.T) {
	tr := NewTrie()
	words := []string{"jag", "jagadish", "jaguar", "milo", "srivastava", ""}
	for _, w := range words {
		tr.Insert(w)
	}
	tr.Insert("jag") // duplicate
	if tr.Len() != len(words) {
		t.Fatalf("Len = %d, want %d", tr.Len(), len(words))
	}
	for _, w := range words {
		if !tr.Contains(w) {
			t.Errorf("Contains(%q) = false", w)
		}
	}
	if tr.Contains("jaga") {
		t.Error("prefix must not count as member")
	}
}

func TestTrieWalkPrefix(t *testing.T) {
	tr := NewTrie()
	for _, w := range []string{"jag", "jagadish", "jaguar", "jz", "milo"} {
		tr.Insert(w)
	}
	var got []string
	tr.WalkPrefix("jag", func(s string) bool {
		got = append(got, s)
		return true
	})
	want := []string{"jag", "jagadish", "jaguar"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("WalkPrefix = %v, want %v (must be sorted)", got, want)
	}
	// Early termination.
	n := 0
	tr.WalkPrefix("", func(string) bool { n++; return n < 2 })
	if n != 2 {
		t.Fatalf("early stop visited %d", n)
	}
	// Missing prefix.
	tr.WalkPrefix("zzz", func(string) bool { t.Fatal("should not visit"); return true })
}

func TestSuffixContaining(t *testing.T) {
	vals := []string{"h jagadish", "lakshmanan", "milo", "srivastava", "vista"}
	x := BuildSuffix(vals)
	cases := []struct {
		sub  string
		want []int
	}{
		{"jag", []int{0}},
		{"a", []int{0, 1, 3, 4}},
		{"sta", []int{3, 4}},
		{"ish", []int{0}},
		{"zzz", nil},
		{"", []int{0, 1, 2, 3, 4}},
		{"milo", []int{2}},
	}
	for _, c := range cases {
		got := x.Containing(c.sub)
		if fmt.Sprint(got) != fmt.Sprint(c.want) {
			t.Errorf("Containing(%q) = %v, want %v", c.sub, got, c.want)
		}
	}
}

func TestSuffixMatchWildcard(t *testing.T) {
	vals := []string{"h jagadish", "jaguar", "dish", "jag"}
	x := BuildSuffix(vals)
	cases := []struct {
		pat  string
		want []int
	}{
		{"*jag*", []int{0, 1, 3}},
		{"jag*", []int{1, 3}},
		{"*dish", []int{0, 2}},
		{"jag", []int{3}},
		{"*", []int{0, 1, 2, 3}},
		{"h*dish", []int{0}},
		{"h*x*", nil},
	}
	for _, c := range cases {
		got := x.MatchWildcard(c.pat)
		if fmt.Sprint(got) != fmt.Sprint(c.want) {
			t.Errorf("MatchWildcard(%q) = %v, want %v", c.pat, got, c.want)
		}
	}
}

func TestQuickSuffixAgainstStringsContains(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	randWord := func(n int) string {
		b := make([]byte, 1+r.Intn(n))
		for i := range b {
			b[i] = byte('a' + r.Intn(4))
		}
		return string(b)
	}
	f := func() bool {
		nvals := 1 + r.Intn(12)
		seen := map[string]bool{}
		var vals []string
		for len(vals) < nvals {
			w := randWord(10)
			if !seen[w] {
				seen[w] = true
				vals = append(vals, w)
			}
		}
		x := BuildSuffix(vals)
		sub := randWord(4)
		got := x.Containing(sub)
		var want []int
		for i, v := range vals {
			if strings.Contains(v, sub) {
				want = append(want, i)
			}
		}
		sort.Ints(want)
		return fmt.Sprint(got) == fmt.Sprint(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickTrieAgainstMap(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	tr := NewTrie()
	oracle := map[string]bool{}
	f := func() bool {
		w := fmt.Sprintf("%c%c%c", 'a'+r.Intn(3), 'a'+r.Intn(3), 'a'+r.Intn(3))[:1+r.Intn(3)]
		if r.Intn(2) == 0 {
			tr.Insert(w)
			oracle[w] = true
		}
		if tr.Contains(w) != oracle[w] {
			return false
		}
		return tr.Len() == len(oracle)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}
