package strindex

import (
	"sort"
	"strings"
)

// SuffixIndex is a suffix array over a set of distinct strings. It
// answers "which values contain this substring" in O(|sub| log S + hits)
// where S is the total number of indexed suffixes — the role the paper
// assigns to suffix-tree indexes for wildcard string filters.
type SuffixIndex struct {
	vals []string
	sa   []suffixRef // sorted by suffix text
}

type suffixRef struct {
	val int32 // index into vals
	off int32 // suffix start offset
}

// BuildSuffix indexes the given values (which should be distinct; the
// index stores them as supplied).
func BuildSuffix(vals []string) *SuffixIndex {
	x := &SuffixIndex{vals: vals}
	total := 0
	for _, v := range vals {
		total += len(v)
	}
	x.sa = make([]suffixRef, 0, total)
	for vi, v := range vals {
		for off := 0; off < len(v); off++ {
			x.sa = append(x.sa, suffixRef{val: int32(vi), off: int32(off)})
		}
	}
	sort.Slice(x.sa, func(i, j int) bool {
		a, b := x.suffix(x.sa[i]), x.suffix(x.sa[j])
		return a < b
	})
	return x
}

func (x *SuffixIndex) suffix(r suffixRef) string { return x.vals[r.val][r.off:] }

// Values returns the indexed values (shared slice; do not mutate).
func (x *SuffixIndex) Values() []string { return x.vals }

// Containing returns the indices (into Values) of the distinct values
// containing sub, in ascending index order. An empty substring matches
// every value.
func (x *SuffixIndex) Containing(sub string) []int {
	if sub == "" {
		out := make([]int, len(x.vals))
		for i := range out {
			out[i] = i
		}
		return out
	}
	lo := sort.Search(len(x.sa), func(i int) bool { return x.suffix(x.sa[i]) >= sub })
	seen := make(map[int32]bool)
	var out []int
	for i := lo; i < len(x.sa); i++ {
		if !strings.HasPrefix(x.suffix(x.sa[i]), sub) {
			break
		}
		if !seen[x.sa[i].val] {
			seen[x.sa[i].val] = true
			out = append(out, int(x.sa[i].val))
		}
	}
	sort.Ints(out)
	return out
}

// MatchWildcard returns the indices of values matching the '*' wildcard
// pattern, using the pattern's longest literal segment to prune via the
// suffix array and verifying the full pattern on each candidate.
func (x *SuffixIndex) MatchWildcard(pattern string) []int {
	segs := strings.Split(pattern, "*")
	longest := ""
	for _, s := range segs {
		if len(s) > len(longest) {
			longest = s
		}
	}
	candidates := x.Containing(longest)
	out := candidates[:0]
	for _, ci := range candidates {
		if wildcardMatch(segs, x.vals[ci]) {
			out = append(out, ci)
		}
	}
	return out
}

// wildcardMatch mirrors filter.WildcardMatch; duplicated here to keep
// strindex free of higher-layer imports.
func wildcardMatch(segments []string, s string) bool {
	if len(segments) == 0 {
		return s == ""
	}
	if len(segments) == 1 {
		return s == segments[0]
	}
	if !strings.HasPrefix(s, segments[0]) {
		return false
	}
	s = s[len(segments[0]):]
	last := segments[len(segments)-1]
	if !strings.HasSuffix(s, last) {
		return false
	}
	s = s[:len(s)-len(last)]
	for _, seg := range segments[1 : len(segments)-1] {
		if seg == "" {
			continue
		}
		i := strings.Index(s, seg)
		if i < 0 {
			return false
		}
		s = s[i+len(seg):]
	}
	return true
}
