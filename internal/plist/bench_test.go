package plist

import (
	"io"
	"testing"

	"repro/internal/pager"
)

func BenchmarkRecordEncode(b *testing.B) {
	r := testRecord(7)
	var buf []byte
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = AppendRecord(buf[:0], r)
	}
}

func BenchmarkRecordDecode(b *testing.B) {
	buf := AppendRecord(nil, testRecord(7))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeRecord(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkListScan(b *testing.B) {
	d := pager.NewDisk(4096)
	l, err := Build(d, sortedRecords(2000))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rd := l.Reader()
		for {
			if _, err := rd.Next(); err == io.EOF {
				break
			} else if err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkStackPushPop(b *testing.B) {
	d := pager.NewDisk(4096)
	s := NewStack(d, 4)
	frame := make([]byte, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Push(frame); err != nil {
			b.Fatal(err)
		}
		if i%3 == 2 {
			if _, err := s.Pop(); err != nil {
				b.Fatal(err)
			}
		}
	}
}
