package plist

import (
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/pager"
)

// List is a sequence of records stored as a length-prefixed byte stream
// across pages of a Disk. Lists are immutable once closed.
type List struct {
	disk  *pager.Disk
	pages []pager.PageID
	size  int64 // total stream bytes
	count int64 // number of records
}

// Count returns the number of records in the list.
func (l *List) Count() int64 { return l.count }

// Pages returns the number of pages the list occupies — |L|/B in the
// paper's notation.
func (l *List) Pages() int { return len(l.pages) }

// Size returns the list's total stream length in bytes.
func (l *List) Size() int64 { return l.size }

// Disk returns the device the list lives on.
func (l *List) Disk() *pager.Disk { return l.disk }

// PageIDs returns the list's page identifiers, for snapshot manifests.
func (l *List) PageIDs() []pager.PageID {
	return append([]pager.PageID(nil), l.pages...)
}

// Restore reconstructs a list from a snapshot manifest: the pages (in
// order), total stream size and record count previously reported by
// PageIDs/Size/Count.
func Restore(disk *pager.Disk, pages []pager.PageID, size, count int64) *List {
	return &List{disk: disk, pages: append([]pager.PageID(nil), pages...), size: size, count: count}
}

// Free releases the list's pages back to the device.
func (l *List) Free() error {
	for _, id := range l.pages {
		if err := l.disk.Free(id); err != nil {
			return err
		}
	}
	l.pages = nil
	return nil
}

// Writer appends records to a new list. It buffers exactly one page;
// Append streams the encoded record across page boundaries, writing each
// full page once.
type Writer struct {
	disk    *pager.Disk
	page    []byte
	off     int
	pages   []pager.PageID
	size    int64
	count   int64
	scratch []byte
	lastKey string
	ordered bool
	err     error
}

// NewWriter starts a new list on disk. The writer verifies that keys are
// appended in non-decreasing order — every algorithm in the paper both
// requires and preserves sortedness — unless Unordered is called.
func NewWriter(disk *pager.Disk) *Writer {
	return &Writer{disk: disk, page: make([]byte, disk.PageSize()), ordered: true}
}

// Unordered disables the sorted-append check (used by sort-run
// formation, which sorts afterwards).
func (w *Writer) Unordered() *Writer {
	w.ordered = false
	return w
}

// Append adds a record to the list.
func (w *Writer) Append(r *Record) error {
	if w.err != nil {
		return w.err
	}
	if w.ordered && w.count > 0 && r.Key < w.lastKey {
		w.err = fmt.Errorf("plist: unsorted append: %q after %q", r.Key, w.lastKey)
		return w.err
	}
	w.lastKey = r.Key
	w.scratch = AppendRecord(w.scratch[:0], r)
	var hdr [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], uint64(len(w.scratch)))
	if err := w.writeBytes(hdr[:n]); err != nil {
		return err
	}
	if err := w.writeBytes(w.scratch); err != nil {
		return err
	}
	w.count++
	return nil
}

func (w *Writer) writeBytes(b []byte) error {
	for len(b) > 0 {
		n := copy(w.page[w.off:], b)
		w.off += n
		w.size += int64(n)
		b = b[n:]
		if w.off == len(w.page) {
			if err := w.flushPage(); err != nil {
				return err
			}
		}
	}
	return nil
}

func (w *Writer) flushPage() error {
	id, err := w.disk.Alloc()
	if err != nil {
		w.err = err
		return err
	}
	if err := w.disk.Write(id, w.page[:w.off]); err != nil {
		w.err = err
		return err
	}
	w.pages = append(w.pages, id)
	w.off = 0
	return nil
}

// Close flushes the final partial page and returns the completed list.
func (w *Writer) Close() (*List, error) {
	if w.err != nil {
		return nil, w.err
	}
	if w.off > 0 {
		if err := w.flushPage(); err != nil {
			return nil, err
		}
	}
	return &List{disk: w.disk, pages: w.pages, size: w.size, count: w.count}, nil
}

// Reader iterates a list's records in order, buffering one page. Each
// Reader owns a pager.ReadHandle, so any number of Readers — including
// Readers over the same list — may run on different goroutines
// concurrently (the per-goroutine read contract of DESIGN.md §9).
type Reader struct {
	l       *List
	h       *pager.ReadHandle
	page    []byte
	pi      int   // index into l.pages of the page after the buffered one
	off     int   // offset in page
	read    int64 // stream bytes consumed
	scratch []byte
}

// Reader returns a fresh iterator over the list.
func (l *List) Reader() *Reader {
	return l.MeteredReader(nil)
}

// MeteredReader is Reader with a per-query pager.Meter attached to the
// underlying read handle, so iterating a list on a shared device counts
// into the owning query's meter (nil meter = plain Reader).
func (l *List) MeteredReader(m *pager.Meter) *Reader {
	return &Reader{l: l, h: l.disk.NewMeteredReadHandle(m), page: make([]byte, l.disk.PageSize())}
}

// ReaderAt returns an iterator positioned at stream offset off, which
// must be a record boundary previously obtained from a Writer's Offset
// or a RandomReader. It reads the containing page immediately.
func (l *List) ReaderAt(off int64) (*Reader, error) {
	return l.MeteredReaderAt(off, nil)
}

// MeteredReaderAt is ReaderAt with a per-query meter (see MeteredReader).
func (l *List) MeteredReaderAt(off int64, m *pager.Meter) (*Reader, error) {
	r := &Reader{l: l, h: l.disk.NewMeteredReadHandle(m), page: make([]byte, l.disk.PageSize())}
	if off >= l.size {
		r.read = l.size
		return r, nil
	}
	ps := int64(l.disk.PageSize())
	pi := int(off / ps)
	if err := r.h.Read(l.pages[pi], r.page); err != nil {
		return nil, err
	}
	r.pi = pi + 1
	r.off = int(off % ps)
	r.read = off
	return r, nil
}

func (r *Reader) fill() error {
	if r.pi >= len(r.l.pages) {
		return io.EOF
	}
	if err := r.h.Read(r.l.pages[r.pi], r.page); err != nil {
		return err
	}
	r.pi++
	r.off = 0
	return nil
}

func (r *Reader) readByte() (byte, error) {
	if r.read >= r.l.size {
		return 0, io.EOF
	}
	if r.off >= len(r.page) || (r.pi == 0) {
		if err := r.fill(); err != nil {
			return 0, err
		}
	}
	c := r.page[r.off]
	r.off++
	r.read++
	return c, nil
}

func (r *Reader) readFull(b []byte) error {
	for i := range b {
		c, err := r.readByte()
		if err != nil {
			if err == io.EOF {
				return io.ErrUnexpectedEOF
			}
			return err
		}
		b[i] = c
	}
	return nil
}

// Next returns the next record, or io.EOF after the last.
func (r *Reader) Next() (*Record, error) {
	if r.read >= r.l.size {
		return nil, io.EOF
	}
	n, err := binary.ReadUvarint(byteReaderFunc(r.readByte))
	if err != nil {
		if err == io.EOF && r.read < r.l.size {
			return nil, io.ErrUnexpectedEOF
		}
		return nil, err
	}
	if cap(r.scratch) < int(n) {
		r.scratch = make([]byte, n)
	}
	buf := r.scratch[:n]
	if err := r.readFull(buf); err != nil {
		return nil, err
	}
	return DecodeRecord(buf)
}

type byteReaderFunc func() (byte, error)

func (f byteReaderFunc) ReadByte() (byte, error) { return f() }

// Offset returns the stream offset at which the next appended record
// will begin. Stored in an index, it allows later random access via
// ReaderAt/RandomReader.
func (w *Writer) Offset() int64 { return w.size }

// RandomReader reads single records at known stream offsets, caching the
// most recently read page so that ascending-offset access patterns (the
// common case: offsets increase with reverse-DN key) cost one page read
// per page touched. Like Reader, each RandomReader owns a
// pager.ReadHandle and must not be shared between goroutines.
type RandomReader struct {
	l       *List
	h       *pager.ReadHandle
	page    []byte
	cur     int // cached page index; -1 if none
	scratch []byte
}

// RandomReader returns a positioned record reader for the list.
func (l *List) RandomReader() *RandomReader {
	return l.MeteredRandomReader(nil)
}

// MeteredRandomReader is RandomReader with a per-query meter (see
// MeteredReader).
func (l *List) MeteredRandomReader(m *pager.Meter) *RandomReader {
	return &RandomReader{l: l, h: l.disk.NewMeteredReadHandle(m), page: make([]byte, l.disk.PageSize()), cur: -1}
}

func (rr *RandomReader) byteAt(off int64) (byte, error) {
	if off >= rr.l.size {
		return 0, io.ErrUnexpectedEOF
	}
	ps := int64(rr.l.disk.PageSize())
	pi := int(off / ps)
	if pi != rr.cur {
		if err := rr.h.Read(rr.l.pages[pi], rr.page); err != nil {
			return 0, err
		}
		rr.cur = pi
	}
	return rr.page[off%ps], nil
}

// ReadAt decodes the record starting at stream offset off and returns it
// together with the offset of the following record.
func (rr *RandomReader) ReadAt(off int64) (*Record, int64, error) {
	var n uint64
	var shift uint
	for {
		c, err := rr.byteAt(off)
		if err != nil {
			return nil, 0, err
		}
		off++
		n |= uint64(c&0x7f) << shift
		if c < 0x80 {
			break
		}
		shift += 7
	}
	if cap(rr.scratch) < int(n) {
		rr.scratch = make([]byte, n)
	}
	buf := rr.scratch[:n]
	for i := range buf {
		c, err := rr.byteAt(off)
		if err != nil {
			return nil, 0, err
		}
		buf[i] = c
		off++
	}
	rec, err := DecodeRecord(buf)
	if err != nil {
		return nil, 0, err
	}
	return rec, off, nil
}

// Build writes all records to a new list and closes it.
func Build(disk *pager.Disk, recs []*Record) (*List, error) {
	w := NewWriter(disk)
	for _, r := range recs {
		if err := w.Append(r); err != nil {
			return nil, err
		}
	}
	return w.Close()
}

// Materialize copies a sorted record stream into a new list on disk.
func Materialize(disk *pager.Disk, r RecordReader) (*List, error) {
	w := NewWriter(disk)
	for {
		rec, err := r.Next()
		if err == io.EOF {
			return w.Close()
		}
		if err != nil {
			return nil, err
		}
		if err := w.Append(rec); err != nil {
			return nil, err
		}
	}
}

// Drain reads every record of the list into memory (for tests and small
// results).
func Drain(l *List) ([]*Record, error) {
	out := make([]*Record, 0, l.Count())
	rd := l.Reader()
	for {
		rec, err := rd.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, rec)
	}
}
