package plist

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/model"
	"repro/internal/pager"
)

func testRecord(i int) *Record {
	dn := model.MustParseDN(fmt.Sprintf("uid=u%04d, dc=att, dc=com", i))
	e := model.NewEntry(dn)
	e.AddClass("inetOrgPerson")
	e.Add("uid", model.String(fmt.Sprintf("u%04d", i)))
	e.Add("priority", model.Int(int64(i%5)))
	if i%3 == 0 {
		e.Add("slatpref", model.DNValue(model.MustParseDN("tpname=t, dc=com")))
	}
	r := FromEntry(e)
	r.A, r.B = int64(i), int64(-i)
	r.Label = uint8(i % 4)
	return r
}

func TestRecordCodecRoundTrip(t *testing.T) {
	for i := 0; i < 50; i++ {
		r := testRecord(i)
		b := AppendRecord(nil, r)
		got, err := DecodeRecord(b)
		if err != nil {
			t.Fatalf("decode %d: %v", i, err)
		}
		if got.Key != r.Key || got.Label != r.Label || got.A != r.A || got.B != r.B {
			t.Fatalf("header mismatch: %+v vs %+v", got, r)
		}
		if !got.Entry.Equal(r.Entry) {
			t.Fatalf("entry mismatch:\n%s\nvs\n%s", got.Entry, r.Entry)
		}
	}
}

func TestRecordCodecNilEntry(t *testing.T) {
	r := &Record{Key: "k\x00", Label: 3, A: 9}
	got, err := DecodeRecord(AppendRecord(nil, r))
	if err != nil {
		t.Fatal(err)
	}
	if got.Entry != nil || got.Key != r.Key || got.A != 9 {
		t.Fatalf("got %+v", got)
	}
}

func TestRecordCodecTruncation(t *testing.T) {
	b := AppendRecord(nil, testRecord(1))
	for cut := 0; cut < len(b); cut++ {
		if _, err := DecodeRecord(b[:cut]); err == nil {
			// A prefix that happens to decode fully is impossible given the
			// trailing entry payload, except cut points that truncate only
			// padding — there is none, so any success is a bug.
			t.Fatalf("decode of %d-byte prefix succeeded", cut)
		}
	}
}

func sortedRecords(n int) []*Record {
	recs := make([]*Record, n)
	for i := range recs {
		recs[i] = testRecord(i)
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].Key < recs[j].Key })
	return recs
}

func TestListWriteRead(t *testing.T) {
	d := pager.NewDisk(256) // small pages force records across boundaries
	recs := sortedRecords(200)
	l, err := Build(d, recs)
	if err != nil {
		t.Fatal(err)
	}
	if l.Count() != 200 {
		t.Fatalf("count = %d", l.Count())
	}
	got, err := Drain(l)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("drained %d", len(got))
	}
	for i := range got {
		if got[i].Key != recs[i].Key || !got[i].Entry.Equal(recs[i].Entry) {
			t.Fatalf("record %d mismatch", i)
		}
	}
}

func TestListReaderIO(t *testing.T) {
	// Reading a list must cost exactly its page count.
	d := pager.NewDisk(512)
	l, err := Build(d, sortedRecords(300))
	if err != nil {
		t.Fatal(err)
	}
	d.ResetStats()
	if _, err := Drain(l); err != nil {
		t.Fatal(err)
	}
	st := d.Stats()
	if st.Reads != int64(l.Pages()) {
		t.Fatalf("reads = %d, pages = %d", st.Reads, l.Pages())
	}
	if st.Writes != 0 {
		t.Fatalf("reads should not write: %+v", st)
	}
}

func TestListWriterIO(t *testing.T) {
	// Writing a list must cost exactly one write per page.
	d := pager.NewDisk(512)
	w := NewWriter(d)
	for _, r := range sortedRecords(300) {
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	l, err := w.Close()
	if err != nil {
		t.Fatal(err)
	}
	st := d.Stats()
	if st.Writes != int64(l.Pages()) {
		t.Fatalf("writes = %d, pages = %d", st.Writes, l.Pages())
	}
}

func TestWriterRejectsUnsorted(t *testing.T) {
	d := pager.NewDisk(256)
	w := NewWriter(d)
	if err := w.Append(&Record{Key: "b"}); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(&Record{Key: "a"}); err == nil {
		t.Fatal("unsorted append accepted")
	}
	w2 := NewWriter(d).Unordered()
	if err := w2.Append(&Record{Key: "b"}); err != nil {
		t.Fatal(err)
	}
	if err := w2.Append(&Record{Key: "a"}); err != nil {
		t.Fatalf("unordered writer rejected: %v", err)
	}
}

func TestListFree(t *testing.T) {
	d := pager.NewDisk(256)
	l, err := Build(d, sortedRecords(100))
	if err != nil {
		t.Fatal(err)
	}
	n := d.NumPages()
	if err := l.Free(); err != nil {
		t.Fatal(err)
	}
	if d.NumPages() != 0 {
		t.Fatalf("pages not freed: %d -> %d", n, d.NumPages())
	}
}

func TestEmptyList(t *testing.T) {
	d := pager.NewDisk(256)
	l, err := Build(d, nil)
	if err != nil {
		t.Fatal(err)
	}
	if l.Count() != 0 || l.Pages() != 0 {
		t.Fatalf("empty list: count=%d pages=%d", l.Count(), l.Pages())
	}
	if _, err := l.Reader().Next(); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
}

func TestStackLIFO(t *testing.T) {
	d := pager.NewDisk(128)
	s := NewStack(d, 2)
	var want [][]byte
	for i := 0; i < 100; i++ {
		f := []byte(strings.Repeat("x", i%37) + fmt.Sprint(i))
		want = append(want, f)
		if err := s.Push(f); err != nil {
			t.Fatal(err)
		}
	}
	if s.Len() != 100 {
		t.Fatalf("len = %d", s.Len())
	}
	for i := 99; i >= 0; i-- {
		got, err := s.Pop()
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(want[i]) {
			t.Fatalf("pop %d: %q != %q", i, got, want[i])
		}
	}
	if !s.Empty() {
		t.Fatal("stack not empty")
	}
	if _, err := s.Pop(); err == nil {
		t.Fatal("pop of empty stack succeeded")
	}
}

func TestStackSpillsAndRefetches(t *testing.T) {
	d := pager.NewDisk(128)
	s := NewStack(d, 2)
	frame := []byte(strings.Repeat("f", 40))
	for i := 0; i < 50; i++ { // ~50*44 bytes >> 2*128 window
		if err := s.Push(frame); err != nil {
			t.Fatal(err)
		}
	}
	st := d.Stats()
	if st.Writes == 0 {
		t.Fatal("deep stack should have spilled")
	}
	for i := 0; i < 50; i++ {
		if _, err := s.Pop(); err != nil {
			t.Fatal(err)
		}
	}
	if d.Stats().Reads == 0 {
		t.Fatal("popping past window should have re-fetched spilled pages")
	}
}

func TestStackIOLinear(t *testing.T) {
	// Total stack I/O must be O(bytes pushed / page size): grow-shrink
	// cycles may re-fetch but must stay linear.
	d := pager.NewDisk(128)
	s := NewStack(d, 2)
	frame := []byte(strings.Repeat("z", 28)) // 32B with header
	pushes := 0
	r := rand.New(rand.NewSource(5))
	for cycle := 0; cycle < 20; cycle++ {
		n := 20 + r.Intn(60)
		for i := 0; i < n; i++ {
			if err := s.Push(frame); err != nil {
				t.Fatal(err)
			}
			pushes++
		}
		for i := 0; i < n && !s.Empty(); i++ {
			if _, err := s.Pop(); err != nil {
				t.Fatal(err)
			}
		}
	}
	io := d.Stats().IO()
	bytesMoved := int64(pushes) * 32
	pagesMoved := bytesMoved / 128
	if io > 4*pagesMoved {
		t.Fatalf("stack I/O %d exceeds linear bound %d", io, 4*pagesMoved)
	}
}

func TestStackRecords(t *testing.T) {
	d := pager.NewDisk(256)
	s := NewStack(d, 2)
	r1, r2 := testRecord(1), testRecord(2)
	if err := s.PushRecord(r1); err != nil {
		t.Fatal(err)
	}
	if err := s.PushRecord(r2); err != nil {
		t.Fatal(err)
	}
	got2, err := s.PopRecord()
	if err != nil || got2.Key != r2.Key {
		t.Fatalf("pop2: %v %v", got2, err)
	}
	got1, err := s.PopRecord()
	if err != nil || !got1.Entry.Equal(r1.Entry) {
		t.Fatalf("pop1: %v %v", got1, err)
	}
}

func TestStackRelease(t *testing.T) {
	d := pager.NewDisk(128)
	s := NewStack(d, 2)
	for i := 0; i < 40; i++ {
		if err := s.Push([]byte(strings.Repeat("a", 30))); err != nil {
			t.Fatal(err)
		}
	}
	s.Release()
	if !s.Empty() {
		t.Fatal("release did not empty stack")
	}
	if d.NumPages() != 0 {
		t.Fatalf("release leaked %d pages", d.NumPages())
	}
}

func TestMergeCombinesAndOrders(t *testing.T) {
	d := pager.NewDisk(256)
	mk := func(keys ...string) *List {
		var recs []*Record
		for _, k := range keys {
			recs = append(recs, &Record{Key: k})
		}
		l, err := Build(d, recs)
		if err != nil {
			t.Fatal(err)
		}
		return l
	}
	l1 := mk("a", "c", "e")
	l2 := mk("b", "c", "f")
	m := NewMerge(l1.Reader(), l2.Reader())
	got, err := DrainReader(m)
	if err != nil {
		t.Fatal(err)
	}
	wantKeys := []string{"a", "b", "c", "e", "f"}
	if len(got) != len(wantKeys) {
		t.Fatalf("got %d records", len(got))
	}
	for i, r := range got {
		if r.Key != wantKeys[i] {
			t.Fatalf("key %d = %q", i, r.Key)
		}
	}
	// "c" is in both: label {1,2}.
	if !got[2].HasLabel(1) || !got[2].HasLabel(2) {
		t.Fatalf("combined label = %b", got[2].Label)
	}
	if got[0].HasLabel(2) || got[4].HasLabel(1) {
		t.Fatal("labels leaked across inputs")
	}
}

func TestMergeThreeWay(t *testing.T) {
	d := pager.NewDisk(256)
	mk := func(keys ...string) RecordReader {
		var recs []*Record
		for _, k := range keys {
			recs = append(recs, &Record{Key: k})
		}
		l, err := Build(d, recs)
		if err != nil {
			t.Fatal(err)
		}
		return l.Reader()
	}
	m := NewMerge(mk("a", "d"), mk("b", "d"), mk("c", "d"))
	got, err := DrainReader(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("got %d", len(got))
	}
	last := got[3]
	if last.Key != "d" || !last.HasLabel(1) || !last.HasLabel(2) || !last.HasLabel(3) {
		t.Fatalf("3-way combine failed: %+v", last)
	}
}

func TestQuickMergeEqualsSortedUnion(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	f := func() bool {
		mkKeys := func() []string {
			n := r.Intn(20)
			ks := make([]string, n)
			for i := range ks {
				ks[i] = string(rune('a' + r.Intn(10)))
			}
			sort.Strings(ks)
			// dedupe: lists are sets of entries
			out := ks[:0]
			for i, k := range ks {
				if i == 0 || k != ks[i-1] {
					out = append(out, k)
				}
			}
			return out
		}
		k1, k2 := mkKeys(), mkKeys()
		var r1, r2 []*Record
		for _, k := range k1 {
			r1 = append(r1, &Record{Key: k})
		}
		for _, k := range k2 {
			r2 = append(r2, &Record{Key: k})
		}
		m := NewMerge(NewSliceReader(r1), NewSliceReader(r2))
		got, err := DrainReader(m)
		if err != nil {
			return false
		}
		want := map[string]bool{}
		for _, k := range k1 {
			want[k] = true
		}
		for _, k := range k2 {
			want[k] = true
		}
		if len(got) != len(want) {
			return false
		}
		for i, rec := range got {
			if !want[rec.Key] {
				return false
			}
			if i > 0 && got[i-1].Key >= rec.Key {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestMaterialize(t *testing.T) {
	d := pager.NewDisk(256)
	recs := sortedRecords(50)
	l, err := Materialize(d, NewSliceReader(recs))
	if err != nil {
		t.Fatal(err)
	}
	got, err := Drain(l)
	if err != nil || len(got) != 50 {
		t.Fatalf("%d, %v", len(got), err)
	}
}
