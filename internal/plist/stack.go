package plist

import (
	"encoding/binary"
	"fmt"

	"repro/internal/pager"
)

// Stack is a LIFO of variable-length byte frames backed by pages of a
// Disk, keeping at most a fixed window of pages resident. Pushing past
// the window spills the deepest pages to disk; popping back down
// re-fetches them. This reproduces the paper's observation (proof of
// Theorem 5.1) that "particular stack entries may be swapped out (and
// eventually re-fetched) from the memory multiple times when the stack
// repeatedly grows and shrinks", while total stack I/O stays linear in
// the number of bytes pushed.
type Stack struct {
	disk     *pager.Disk
	window   int
	chunks   []*stackChunk
	resident map[int]struct{}
	top      int64 // byte offset one past the stack top
	count    int
}

type stackChunk struct {
	id   pager.PageID // 0 until first spilled
	data []byte       // nil iff evicted (valid copy on disk)
}

// NewStack creates a stack that keeps at most window pages resident
// (minimum 2: one being written, one being read across a boundary).
func NewStack(disk *pager.Disk, window int) *Stack {
	if window < 2 {
		window = 2
	}
	return &Stack{disk: disk, window: window, resident: make(map[int]struct{})}
}

// Len reports the number of frames on the stack.
func (s *Stack) Len() int { return s.count }

// Empty reports whether the stack has no frames.
func (s *Stack) Empty() bool { return s.count == 0 }

func (s *Stack) pageSize() int64 { return int64(s.disk.PageSize()) }

func (s *Stack) chunkAt(off int64) int { return int(off / s.pageSize()) }

func (s *Stack) topChunk() int {
	if s.top == 0 {
		return 0
	}
	return s.chunkAt(s.top - 1)
}

// ensure makes the chunks covering [lo, hi) resident, reading spilled
// ones back from disk, then trims the resident set to the window.
func (s *Stack) ensure(lo, hi int64) error {
	if hi <= lo {
		return nil
	}
	first, last := s.chunkAt(lo), s.chunkAt(hi-1)
	for len(s.chunks) <= last {
		s.chunks = append(s.chunks, &stackChunk{})
	}
	for i := first; i <= last; i++ {
		c := s.chunks[i]
		if c.data != nil {
			continue
		}
		c.data = make([]byte, s.pageSize())
		if c.id != 0 {
			if err := s.disk.Read(c.id, c.data); err != nil {
				return err
			}
		}
		s.resident[i] = struct{}{}
	}
	return s.evict(first, last)
}

// evict spills resident chunks beyond the window, deepest first, never
// evicting the chunks in the active range [keepLo, keepHi].
func (s *Stack) evict(keepLo, keepHi int) error {
	for len(s.resident) > s.window {
		min := -1
		for i := range s.resident {
			if min == -1 || i < min {
				min = i
			}
		}
		if min >= keepLo && min <= keepHi {
			return nil // everything resident is in active use
		}
		c := s.chunks[min]
		if c.id == 0 {
			id, err := s.disk.Alloc()
			if err != nil {
				return err
			}
			c.id = id
		}
		if err := s.disk.Write(c.id, c.data); err != nil {
			return err
		}
		c.data = nil
		delete(s.resident, min)
	}
	return nil
}

func (s *Stack) writeAt(off int64, b []byte) error {
	if err := s.ensure(off, off+int64(len(b))); err != nil {
		return err
	}
	ps := s.pageSize()
	for len(b) > 0 {
		ci := s.chunkAt(off)
		co := off % ps
		n := copy(s.chunks[ci].data[co:], b)
		b = b[n:]
		off += int64(n)
	}
	return nil
}

func (s *Stack) readAt(off int64, b []byte) error {
	if err := s.ensure(off, off+int64(len(b))); err != nil {
		return err
	}
	ps := s.pageSize()
	for len(b) > 0 {
		ci := s.chunkAt(off)
		co := off % ps
		n := copy(b, s.chunks[ci].data[co:])
		b = b[n:]
		off += int64(n)
	}
	return nil
}

// Push adds a frame to the top of the stack.
func (s *Stack) Push(frame []byte) error {
	var lenBuf [4]byte
	binary.LittleEndian.PutUint32(lenBuf[:], uint32(len(frame)))
	if err := s.writeAt(s.top, frame); err != nil {
		return err
	}
	if err := s.writeAt(s.top+int64(len(frame)), lenBuf[:]); err != nil {
		return err
	}
	s.top += int64(len(frame)) + 4
	s.count++
	return nil
}

// Pop removes and returns the top frame.
func (s *Stack) Pop() ([]byte, error) {
	if s.count == 0 {
		return nil, fmt.Errorf("plist: pop of empty stack")
	}
	var lenBuf [4]byte
	if err := s.readAt(s.top-4, lenBuf[:]); err != nil {
		return nil, err
	}
	n := int64(binary.LittleEndian.Uint32(lenBuf[:]))
	frame := make([]byte, n)
	if err := s.readAt(s.top-4-n, frame); err != nil {
		return nil, err
	}
	s.top -= n + 4
	s.count--
	s.dropDead()
	return frame, nil
}

// dropDead frees chunks entirely above the top: their contents are
// unreachable, so they are discarded without write-back.
func (s *Stack) dropDead() {
	live := 0
	if s.top > 0 {
		live = s.topChunk() + 1
	}
	for i := live; i < len(s.chunks); i++ {
		c := s.chunks[i]
		if c.id != 0 {
			_ = s.disk.Free(c.id)
		}
		delete(s.resident, i)
	}
	s.chunks = s.chunks[:live]
}

// Release frees all disk pages held by the stack.
func (s *Stack) Release() {
	s.top, s.count = 0, 0
	s.dropDead()
}

// PushRecord serializes a record onto the stack.
func (s *Stack) PushRecord(r *Record) error {
	return s.Push(AppendRecord(nil, r))
}

// PopRecord pops and deserializes a record.
func (s *Stack) PopRecord() (*Record, error) {
	b, err := s.Pop()
	if err != nil {
		return nil, err
	}
	return DecodeRecord(b)
}
