package plist

import (
	"io"
	"testing"

	"repro/internal/pager"
)

func TestReaderAtAndOffset(t *testing.T) {
	d := pager.NewDisk(256)
	w := NewWriter(d)
	recs := sortedRecords(120)
	var offsets []int64
	for _, r := range recs {
		offsets = append(offsets, w.Offset())
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	l, err := w.Close()
	if err != nil {
		t.Fatal(err)
	}
	if l.Size() <= 0 {
		t.Fatal("Size not reported")
	}
	if l.Disk() != d {
		t.Fatal("Disk accessor wrong")
	}
	// Start a reader at each recorded offset: it must yield the suffix.
	for _, i := range []int{0, 1, 60, 119} {
		rd, err := l.ReaderAt(offsets[i])
		if err != nil {
			t.Fatal(err)
		}
		for j := i; j < len(recs); j++ {
			got, err := rd.Next()
			if err != nil {
				t.Fatalf("offset %d, record %d: %v", offsets[i], j, err)
			}
			if got.Key != recs[j].Key {
				t.Fatalf("offset %d: record %d = %q, want %q", offsets[i], j, got.Key, recs[j].Key)
			}
		}
		if _, err := rd.Next(); err != io.EOF {
			t.Fatalf("expected EOF, got %v", err)
		}
	}
	// Past-the-end offset: immediate EOF.
	rd, err := l.ReaderAt(l.Size())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rd.Next(); err != io.EOF {
		t.Fatalf("EOF expected at end offset, got %v", err)
	}
}

func TestRandomReaderAscendingAndRepeated(t *testing.T) {
	d := pager.NewDisk(256)
	w := NewWriter(d)
	recs := sortedRecords(80)
	var offsets []int64
	for _, r := range recs {
		offsets = append(offsets, w.Offset())
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	l, err := w.Close()
	if err != nil {
		t.Fatal(err)
	}
	rr := l.RandomReader()
	d.ResetStats()
	for i, off := range offsets {
		rec, next, err := rr.ReadAt(off)
		if err != nil {
			t.Fatal(err)
		}
		if rec.Key != recs[i].Key {
			t.Fatalf("record %d mismatch", i)
		}
		if i+1 < len(offsets) && next != offsets[i+1] {
			t.Fatalf("next offset %d, want %d", next, offsets[i+1])
		}
	}
	// Ascending access must cost ~one read per page, not per record.
	if reads := d.Stats().Reads; reads > int64(l.Pages())+1 {
		t.Fatalf("ascending RandomReader did %d reads over %d pages", reads, l.Pages())
	}
	// Repeated reads cost at most the record's page span each (a record
	// crossing a page boundary re-reads its first page), never more.
	d.ResetStats()
	for i := 0; i < 5; i++ {
		if _, _, err := rr.ReadAt(offsets[len(offsets)-1]); err != nil {
			t.Fatal(err)
		}
	}
	if reads := d.Stats().Reads; reads > 10 {
		t.Fatalf("page cache not reused: %d reads for 5 repeats", reads)
	}
	// Out-of-range offset errors.
	if _, _, err := rr.ReadAt(l.Size() + 10); err == nil {
		t.Fatal("out-of-range ReadAt succeeded")
	}
}

func TestMergeUntaggedAndWithLabel(t *testing.T) {
	r1 := []*Record{{Key: "a", Label: 1}, {Key: "c", Label: 1}}
	r2 := []*Record{{Key: "b", Label: 2}, {Key: "c", Label: 2}}
	m := NewMergeUntagged(NewSliceReader(r1), NewSliceReader(r2))
	got, err := DrainReader(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("got %d", len(got))
	}
	// Untagged: positional labels not added, existing ones unioned.
	if got[0].Label != 1 || got[1].Label != 2 || got[2].Label != 3 {
		t.Fatalf("labels = %d %d %d", got[0].Label, got[1].Label, got[2].Label)
	}
	r := Record{Key: "x"}
	r2v := r.WithLabel(3)
	if !r2v.HasLabel(3) || r.Label != 0 {
		t.Fatal("WithLabel must copy")
	}
}
