package plist

import (
	"io"
)

// RecordReader is the streaming interface shared by list readers, merge
// readers, and every operator in the evaluation engine: a sorted stream
// of records ending with io.EOF. Operators compose by consuming one or
// more RecordReaders and exposing another, which is how the paper's
// pipelined bottom-up query-tree evaluation (Section 8.2) is realized.
type RecordReader interface {
	Next() (*Record, error)
}

// Merge produces the lexicographic merge of k sorted inputs, as used by
// the stack algorithms' firstElement/nextElement(L1, L2[, L3]) and the
// boolean operators. Records with equal keys (the same entry occurring
// in several input lists) are combined into a single record whose label
// is the union of the inputs' labels: label(rl) = {i | rl in Li}. Input
// i's records are additionally tagged with label i (1-based) if tag is
// true.
type Merge struct {
	in    []RecordReader
	heads []*Record
	tag   bool
	err   error
}

// NewMerge builds a merge over the given inputs, tagging records from
// input i with label i.
func NewMerge(inputs ...RecordReader) *Merge {
	return &Merge{in: inputs, heads: make([]*Record, len(inputs)), tag: true}
}

// NewMergeUntagged merges without adding positional labels (existing
// labels are still unioned on key collisions).
func NewMergeUntagged(inputs ...RecordReader) *Merge {
	return &Merge{in: inputs, heads: make([]*Record, len(inputs)), tag: false}
}

func (m *Merge) fill(i int) error {
	if m.heads[i] != nil || m.in[i] == nil {
		return nil
	}
	rec, err := m.in[i].Next()
	if err == io.EOF {
		m.in[i] = nil
		return nil
	}
	if err != nil {
		return err
	}
	if m.tag {
		rec.Label |= 1 << i
	}
	m.heads[i] = rec
	return nil
}

// Next returns the next record in key order, or io.EOF.
func (m *Merge) Next() (*Record, error) {
	if m.err != nil {
		return nil, m.err
	}
	min := -1
	for i := range m.in {
		if err := m.fill(i); err != nil {
			m.err = err
			return nil, err
		}
		if m.heads[i] == nil {
			continue
		}
		if min == -1 || m.heads[i].Key < m.heads[min].Key {
			min = i
		}
	}
	if min == -1 {
		return nil, io.EOF
	}
	out := m.heads[min]
	m.heads[min] = nil
	// Combine equal keys from the other inputs.
	for i := min + 1; i < len(m.in); i++ {
		if m.heads[i] != nil && m.heads[i].Key == out.Key {
			out.Label |= m.heads[i].Label
			if out.Entry == nil {
				out.Entry = m.heads[i].Entry
			}
			m.heads[i] = nil
		}
	}
	return out, nil
}

// SliceReader adapts an in-memory record slice to the RecordReader
// interface (tests, small intermediates).
type SliceReader struct {
	recs []*Record
	i    int
}

// NewSliceReader wraps recs, which must already be sorted by key.
func NewSliceReader(recs []*Record) *SliceReader { return &SliceReader{recs: recs} }

// Next returns the next record or io.EOF.
func (s *SliceReader) Next() (*Record, error) {
	if s.i >= len(s.recs) {
		return nil, io.EOF
	}
	r := s.recs[s.i]
	s.i++
	return r, nil
}

// DrainReader exhausts any RecordReader into memory.
func DrainReader(r RecordReader) ([]*Record, error) {
	var out []*Record
	for {
		rec, err := r.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, rec)
	}
}
