// Package plist implements paged lists of directory-entry records — the
// sorted lists all evaluation algorithms of "Querying Network
// Directories" consume and produce — together with the spillable stack
// those algorithms use, and k-way merging of sorted lists.
//
// A list is a sequence of variable-length records stored as a byte
// stream across fixed-size pages of a pager.Disk. Readers and writers
// hold exactly one page each, and the stack holds a bounded window of
// pages, so every operator runs in constant memory; everything else is
// counted page I/O.
package plist

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/model"
)

// Record is one element of a list: a directory entry tagged with its
// reverse-DN key, the label of which input lists it came from (the
// label(rl) = {i | rl in Li} of Figures 2/4/5), and two operator-specific
// annotation counters (the paper's above/below or aggregate values).
type Record struct {
	Key   string
	Label uint8   // bitmask: bit i-1 set iff the record is in list Li
	A, B  int64   // operator annotations, e.g. (above, below)
	Aux   []int64 // extended operator state (aggregate statistics)
	Entry *model.Entry
}

// HasLabel reports whether the record belongs to list i (1-based).
func (r *Record) HasLabel(i int) bool { return r.Label&(1<<(i-1)) != 0 }

// WithLabel returns a copy of the record tagged as belonging to list i.
func (r Record) WithLabel(i int) Record {
	r.Label |= 1 << (i - 1)
	return r
}

func appendUvarint(b []byte, v uint64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	return append(b, tmp[:n]...)
}

func appendVarint(b []byte, v int64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutVarint(tmp[:], v)
	return append(b, tmp[:n]...)
}

func appendString(b []byte, s string) []byte {
	b = appendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func appendDN(b []byte, dn model.DN) []byte {
	b = appendUvarint(b, uint64(len(dn)))
	for _, rdn := range dn {
		b = appendUvarint(b, uint64(len(rdn)))
		for _, ava := range rdn {
			b = appendString(b, ava.Attr)
			b = appendString(b, ava.Value)
		}
	}
	return b
}

func appendValue(b []byte, v model.Value) []byte {
	b = append(b, byte(v.Kind()))
	switch v.Kind() {
	case model.KindString:
		b = appendString(b, v.Str())
	case model.KindInt:
		b = appendVarint(b, v.Int())
	case model.KindDN:
		b = appendDN(b, v.DN())
	case model.KindVector:
		vec := v.Vec()
		b = appendUvarint(b, uint64(len(vec)))
		for _, f := range vec {
			var tmp [4]byte
			binary.LittleEndian.PutUint32(tmp[:], math.Float32bits(f))
			b = append(b, tmp[:]...)
		}
	}
	return b
}

// AppendRecord serializes r onto b and returns the extended slice.
func AppendRecord(b []byte, r *Record) []byte {
	b = appendString(b, r.Key)
	b = append(b, r.Label)
	b = appendVarint(b, r.A)
	b = appendVarint(b, r.B)
	b = appendUvarint(b, uint64(len(r.Aux)))
	for _, v := range r.Aux {
		b = appendVarint(b, v)
	}
	if r.Entry == nil {
		return append(b, 0)
	}
	b = append(b, 1)
	b = appendDN(b, r.Entry.DN())
	pairs := r.Entry.Pairs()
	b = appendUvarint(b, uint64(len(pairs)))
	for _, av := range pairs {
		b = appendString(b, av.Attr)
		b = appendValue(b, av.Value)
	}
	return b
}

type decoder struct {
	b []byte
	i int
}

var errTruncated = fmt.Errorf("plist: truncated record")

func (d *decoder) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.b[d.i:])
	if n <= 0 {
		return 0, errTruncated
	}
	d.i += n
	return v, nil
}

func (d *decoder) varint() (int64, error) {
	v, n := binary.Varint(d.b[d.i:])
	if n <= 0 {
		return 0, errTruncated
	}
	d.i += n
	return v, nil
}

func (d *decoder) str() (string, error) {
	n, err := d.uvarint()
	if err != nil {
		return "", err
	}
	if d.i+int(n) > len(d.b) {
		return "", errTruncated
	}
	s := string(d.b[d.i : d.i+int(n)])
	d.i += int(n)
	return s, nil
}

func (d *decoder) byte() (byte, error) {
	if d.i >= len(d.b) {
		return 0, errTruncated
	}
	c := d.b[d.i]
	d.i++
	return c, nil
}

func (d *decoder) dn() (model.DN, error) {
	n, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	dn := make(model.DN, n)
	for i := range dn {
		m, err := d.uvarint()
		if err != nil {
			return nil, err
		}
		rdn := make(model.RDN, m)
		for j := range rdn {
			if rdn[j].Attr, err = d.str(); err != nil {
				return nil, err
			}
			if rdn[j].Value, err = d.str(); err != nil {
				return nil, err
			}
		}
		dn[i] = rdn
	}
	return dn, nil
}

func (d *decoder) value() (model.Value, error) {
	k, err := d.byte()
	if err != nil {
		return model.Value{}, err
	}
	switch model.Kind(k) {
	case model.KindString:
		s, err := d.str()
		return model.String(s), err
	case model.KindInt:
		i, err := d.varint()
		return model.Int(i), err
	case model.KindDN:
		dn, err := d.dn()
		return model.DNValue(dn), err
	case model.KindVector:
		n, err := d.uvarint()
		if err != nil {
			return model.Value{}, err
		}
		if n > uint64(len(d.b)-d.i)/4 {
			return model.Value{}, errTruncated
		}
		vec := make([]float32, n)
		for i := range vec {
			vec[i] = math.Float32frombits(binary.LittleEndian.Uint32(d.b[d.i:]))
			d.i += 4
		}
		return model.VectorValue(vec), nil
	default:
		return model.Value{}, fmt.Errorf("plist: bad value kind %d", k)
	}
}

// DecodeRecord parses one serialized record from b, which must contain
// exactly one record.
func DecodeRecord(b []byte) (*Record, error) {
	d := &decoder{b: b}
	r := &Record{}
	var err error
	if r.Key, err = d.str(); err != nil {
		return nil, err
	}
	if r.Label, err = d.byte(); err != nil {
		return nil, err
	}
	if r.A, err = d.varint(); err != nil {
		return nil, err
	}
	if r.B, err = d.varint(); err != nil {
		return nil, err
	}
	naux, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if naux > 0 {
		r.Aux = make([]int64, naux)
		for i := range r.Aux {
			if r.Aux[i], err = d.varint(); err != nil {
				return nil, err
			}
		}
	}
	has, err := d.byte()
	if err != nil {
		return nil, err
	}
	if has == 0 {
		return r, nil
	}
	dn, err := d.dn()
	if err != nil {
		return nil, err
	}
	e := model.NewEntry(dn)
	n, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < n; i++ {
		attr, err := d.str()
		if err != nil {
			return nil, err
		}
		v, err := d.value()
		if err != nil {
			return nil, err
		}
		e.Add(attr, v)
	}
	r.Entry = e
	return r, nil
}

// FromEntry builds the canonical record for a directory entry: its key,
// no labels, zero annotations.
func FromEntry(e *model.Entry) *Record {
	return &Record{Key: e.Key(), Entry: e}
}
