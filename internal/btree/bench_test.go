package btree

import (
	"fmt"
	"testing"

	"repro/internal/pager"
)

func BenchmarkInsert(b *testing.B) {
	d := pager.NewDisk(4096)
	tr, err := New(d, 64)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tr.Insert([]byte(fmt.Sprintf("key%09d", i)), []byte("v")); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGet(b *testing.B) {
	d := pager.NewDisk(4096)
	tr, err := New(d, 64)
	if err != nil {
		b.Fatal(err)
	}
	const n = 10000
	for i := 0; i < n; i++ {
		if err := tr.Insert([]byte(fmt.Sprintf("key%09d", i)), []byte("v")); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.Get([]byte(fmt.Sprintf("key%09d", i%n))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScan(b *testing.B) {
	d := pager.NewDisk(4096)
	tr, err := New(d, 64)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 5000; i++ {
		if err := tr.Insert([]byte(fmt.Sprintf("key%09d", i)), []byte("v")); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		if err := tr.Scan(nil, nil, func(k, v []byte) bool { n++; return true }); err != nil {
			b.Fatal(err)
		}
		if n != 5000 {
			b.Fatalf("scanned %d", n)
		}
	}
}
