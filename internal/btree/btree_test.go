package btree

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/pager"
)

func newTestTree(t *testing.T, pageSize, pool int) (*Tree, *pager.Disk) {
	t.Helper()
	d := pager.NewDisk(pageSize)
	tr, err := New(d, pool)
	if err != nil {
		t.Fatal(err)
	}
	return tr, d
}

func TestInsertGet(t *testing.T) {
	tr, _ := newTestTree(t, 256, 16)
	n := 2000
	for i := 0; i < n; i++ {
		k := []byte(fmt.Sprintf("key%06d", i*7%n))
		v := []byte(fmt.Sprintf("val%d", i*7%n))
		if err := tr.Insert(k, v); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Len() != n {
		t.Fatalf("Len = %d, want %d", tr.Len(), n)
	}
	for i := 0; i < n; i++ {
		k := []byte(fmt.Sprintf("key%06d", i))
		v, err := tr.Get(k)
		if err != nil {
			t.Fatalf("Get(%s): %v", k, err)
		}
		if want := fmt.Sprintf("val%d", i); string(v) != want {
			t.Fatalf("Get(%s) = %q, want %q", k, v, want)
		}
	}
	if _, err := tr.Get([]byte("missing")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing key: %v", err)
	}
}

func TestInsertReplace(t *testing.T) {
	tr, _ := newTestTree(t, 256, 16)
	if err := tr.Insert([]byte("k"), []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := tr.Insert([]byte("k"), []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d after replace", tr.Len())
	}
	v, err := tr.Get([]byte("k"))
	if err != nil || string(v) != "v2" {
		t.Fatalf("Get = %q, %v", v, err)
	}
}

func TestScanRange(t *testing.T) {
	tr, _ := newTestTree(t, 256, 16)
	for i := 0; i < 500; i++ {
		k := []byte(fmt.Sprintf("k%04d", i))
		if err := tr.Insert(k, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	var got []string
	err := tr.Scan([]byte("k0100"), []byte("k0110"), func(k, v []byte) bool {
		got = append(got, string(k))
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 || got[0] != "k0100" || got[9] != "k0109" {
		t.Fatalf("scan = %v", got)
	}
	// Early stop.
	count := 0
	err = tr.Scan([]byte("k0000"), nil, func(k, v []byte) bool {
		count++
		return count < 5
	})
	if err != nil || count != 5 {
		t.Fatalf("early stop: %d, %v", count, err)
	}
}

func TestScanPrefix(t *testing.T) {
	tr, _ := newTestTree(t, 256, 16)
	keys := []string{"ab", "abc", "abd", "ac", "b"}
	for _, k := range keys {
		if err := tr.Insert([]byte(k), []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	var got []string
	if err := tr.ScanPrefix([]byte("ab"), func(k, v []byte) bool {
		got = append(got, string(k))
		return true
	}); err != nil {
		t.Fatal(err)
	}
	want := []string{"ab", "abc", "abd"}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v", got)
		}
	}
}

func TestPrefixUpperBound(t *testing.T) {
	cases := []struct {
		in   []byte
		want []byte
	}{
		{[]byte("ab"), []byte("ac")},
		{[]byte{0x61, 0xff}, []byte{0x62}},
		{[]byte{0xff, 0xff}, nil},
		{[]byte{}, nil},
	}
	for _, c := range cases {
		if got := prefixUpperBound(c.in); !bytes.Equal(got, c.want) {
			t.Errorf("prefixUpperBound(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestDelete(t *testing.T) {
	tr, _ := newTestTree(t, 256, 16)
	for i := 0; i < 300; i++ {
		if err := tr.Insert([]byte(fmt.Sprintf("k%04d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 300; i += 2 {
		if err := tr.Delete([]byte(fmt.Sprintf("k%04d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Len() != 150 {
		t.Fatalf("Len = %d", tr.Len())
	}
	for i := 0; i < 300; i++ {
		_, err := tr.Get([]byte(fmt.Sprintf("k%04d", i)))
		if i%2 == 0 && !errors.Is(err, ErrNotFound) {
			t.Fatalf("deleted key %d still present: %v", i, err)
		}
		if i%2 == 1 && err != nil {
			t.Fatalf("surviving key %d lost: %v", i, err)
		}
	}
	if err := tr.Delete([]byte("nosuch")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("delete missing: %v", err)
	}
}

func TestTooBig(t *testing.T) {
	tr, _ := newTestTree(t, 128, 16)
	if err := tr.Insert(make([]byte, 200), []byte("v")); !errors.Is(err, ErrTooBig) {
		t.Fatalf("oversized insert: %v", err)
	}
}

func TestVariableLengthKeys(t *testing.T) {
	tr, _ := newTestTree(t, 256, 16)
	r := rand.New(rand.NewSource(4))
	keys := map[string]string{}
	for i := 0; i < 1000; i++ {
		k := make([]byte, 1+r.Intn(40))
		for j := range k {
			k[j] = byte('a' + r.Intn(26))
		}
		v := fmt.Sprint(i)
		keys[string(k)] = v
		if err := tr.Insert(k, []byte(v)); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Len() != len(keys) {
		t.Fatalf("Len = %d, want %d", tr.Len(), len(keys))
	}
	for k, v := range keys {
		got, err := tr.Get([]byte(k))
		if err != nil || string(got) != v {
			t.Fatalf("Get(%q) = %q, %v", k, got, err)
		}
	}
	// Full scan must be sorted and complete.
	var scanned []string
	if err := tr.Scan(nil, nil, func(k, v []byte) bool {
		scanned = append(scanned, string(k))
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if !sort.StringsAreSorted(scanned) {
		t.Fatal("scan out of order")
	}
	if len(scanned) != len(keys) {
		t.Fatalf("scan found %d of %d", len(scanned), len(keys))
	}
}

func TestQuickAgainstMap(t *testing.T) {
	tr, _ := newTestTree(t, 256, 32)
	oracle := map[string]string{}
	r := rand.New(rand.NewSource(8))
	f := func() bool {
		op := r.Intn(3)
		k := fmt.Sprintf("k%03d", r.Intn(200))
		switch op {
		case 0:
			v := fmt.Sprint(r.Intn(1000))
			oracle[k] = v
			if err := tr.Insert([]byte(k), []byte(v)); err != nil {
				return false
			}
		case 1:
			got, err := tr.Get([]byte(k))
			want, ok := oracle[k]
			if ok != (err == nil) {
				return false
			}
			if ok && string(got) != want {
				return false
			}
		case 2:
			err := tr.Delete([]byte(k))
			_, ok := oracle[k]
			if ok != (err == nil) {
				return false
			}
			delete(oracle, k)
		}
		return tr.Len() == len(oracle)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestInteriorCachingSavesIO(t *testing.T) {
	tr, d := newTestTree(t, 256, 64)
	for i := 0; i < 3000; i++ {
		if err := tr.Insert([]byte(fmt.Sprintf("key%06d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	d.ResetStats()
	for i := 0; i < 100; i++ {
		if _, err := tr.Get([]byte(fmt.Sprintf("key%06d", i*30))); err != nil {
			t.Fatal(err)
		}
	}
	st := d.Stats()
	// With a warm pool, 100 point lookups must cost far fewer than
	// 100 * tree-height page reads.
	if st.Reads > 150 {
		t.Fatalf("point lookups did %d reads; pool not caching", st.Reads)
	}
}

func TestPersistsThroughPoolEviction(t *testing.T) {
	// A tiny pool forces every page to round-trip through the disk.
	d := pager.NewDisk(256)
	tr, err := New(d, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		if err := tr.Insert([]byte(fmt.Sprintf("k%06d", i)), []byte(fmt.Sprint(i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2000; i += 97 {
		v, err := tr.Get([]byte(fmt.Sprintf("k%06d", i)))
		if err != nil || string(v) != fmt.Sprint(i) {
			t.Fatalf("Get after eviction churn: %q, %v", v, err)
		}
	}
}
