// Package btree implements a page-based B+tree with variable-length byte
// keys and values over the simulated disk of internal/pager.
//
// Section 4.1 of "Querying Network Directories" assumes atomic queries
// are supported "with the help of B-tree indices for integer and
// distinguishedName filters"; this package provides those indexes. The
// directory store builds one tree over reverse-DN keys (making the sub
// scope a single contiguous range scan) and one over composite
// (attribute, value, reverse-DN) keys for attribute filters.
//
// Interior pages are cached in a pinning buffer pool so repeated
// traversals cost I/O only at the leaf level; all page traffic is
// counted by the underlying disk.
package btree

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/pager"
)

// Tree is a B+tree. Keys are unique; Insert of an existing key replaces
// its value.
type Tree struct {
	pool *pager.Pool
	root pager.PageID
	n    int // number of keys
}

// Errors returned by tree operations.
var (
	ErrNotFound = errors.New("btree: key not found")
	ErrTooBig   = errors.New("btree: key/value exceeds page capacity")
)

// New creates an empty tree on disk using a pool of the given capacity
// (minimum 8 frames).
func New(disk *pager.Disk, poolPages int) (*Tree, error) {
	if poolPages < 8 {
		poolPages = 8
	}
	pool := pager.NewPool(disk, poolPages)
	f, err := pool.Alloc()
	if err != nil {
		return nil, err
	}
	root := &node{leaf: true}
	root.encode(f.Data)
	f.SetDirty()
	id := f.ID
	pool.Unpin(f)
	return &Tree{pool: pool, root: id}, nil
}

// Len returns the number of keys in the tree.
func (t *Tree) Len() int { return t.n }

// Root returns the root page id, for snapshot manifests.
func (t *Tree) Root() pager.PageID { return t.root }

// Open attaches to a tree previously built on disk, identified by its
// root page and key count (from Root/Len). The tree must have been
// flushed before the disk was snapshotted.
func Open(disk *pager.Disk, poolPages int, root pager.PageID, n int) *Tree {
	if poolPages < 8 {
		poolPages = 8
	}
	return &Tree{pool: pager.NewPool(disk, poolPages), root: root, n: n}
}

// Flush writes all dirty buffered pages to disk.
func (t *Tree) Flush() error { return t.pool.Flush() }

// node is the decoded form of a tree page.
//
// Page layout:
//
//	byte 0:      1 if leaf
//	bytes 1..2:  number of keys (uint16)
//	bytes 3..6:  next-leaf page id (leaves) or first child id (interior)
//	then per key:
//	  uvarint klen, key bytes,
//	  leaf:     uvarint vlen, value bytes
//	  interior: uint32 child page id (subtree with keys >= this key)
type node struct {
	leaf     bool
	keys     [][]byte
	vals     [][]byte       // leaf only; len == len(keys)
	children []pager.PageID // interior only; len == len(keys)+1
	next     pager.PageID   // leaf chain
}

func (nd *node) encodedSize() int {
	sz := 7
	for i, k := range nd.keys {
		sz += uvarintLen(uint64(len(k))) + len(k)
		if nd.leaf {
			sz += uvarintLen(uint64(len(nd.vals[i]))) + len(nd.vals[i])
		} else {
			sz += 4
		}
	}
	return sz
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

func (nd *node) encode(page []byte) {
	for i := range page {
		page[i] = 0
	}
	if nd.leaf {
		page[0] = 1
	}
	binary.LittleEndian.PutUint16(page[1:], uint16(len(nd.keys)))
	if nd.leaf {
		binary.LittleEndian.PutUint32(page[3:], uint32(nd.next))
	} else {
		binary.LittleEndian.PutUint32(page[3:], uint32(nd.children[0]))
	}
	off := 7
	for i, k := range nd.keys {
		off += binary.PutUvarint(page[off:], uint64(len(k)))
		off += copy(page[off:], k)
		if nd.leaf {
			off += binary.PutUvarint(page[off:], uint64(len(nd.vals[i])))
			off += copy(page[off:], nd.vals[i])
		} else {
			binary.LittleEndian.PutUint32(page[off:], uint32(nd.children[i+1]))
			off += 4
		}
	}
}

func decodeNode(page []byte) (*node, error) {
	nd := &node{leaf: page[0] == 1}
	n := int(binary.LittleEndian.Uint16(page[1:]))
	first := pager.PageID(binary.LittleEndian.Uint32(page[3:]))
	if nd.leaf {
		nd.next = first
	} else {
		nd.children = append(nd.children, first)
	}
	off := 7
	for i := 0; i < n; i++ {
		klen, m := binary.Uvarint(page[off:])
		if m <= 0 {
			return nil, fmt.Errorf("btree: corrupt page (key %d)", i)
		}
		off += m
		key := make([]byte, klen)
		copy(key, page[off:off+int(klen)])
		off += int(klen)
		nd.keys = append(nd.keys, key)
		if nd.leaf {
			vlen, m := binary.Uvarint(page[off:])
			if m <= 0 {
				return nil, fmt.Errorf("btree: corrupt page (val %d)", i)
			}
			off += m
			val := make([]byte, vlen)
			copy(val, page[off:off+int(vlen)])
			off += int(vlen)
			nd.vals = append(nd.vals, val)
		} else {
			nd.children = append(nd.children, pager.PageID(binary.LittleEndian.Uint32(page[off:])))
			off += 4
		}
	}
	return nd, nil
}

func (t *Tree) load(id pager.PageID) (*node, error) {
	return t.loadMetered(id, nil)
}

// loadMetered reads a node through the pool, charging a miss's disk
// read to the per-query meter (nil = uncharged).
func (t *Tree) loadMetered(id pager.PageID, m *pager.Meter) (*node, error) {
	f, err := t.pool.GetMetered(id, m)
	if err != nil {
		return nil, err
	}
	defer t.pool.Unpin(f)
	return decodeNode(f.Data)
}

func (t *Tree) store(id pager.PageID, nd *node) error {
	f, err := t.pool.Get(id)
	if err != nil {
		return err
	}
	nd.encode(f.Data)
	f.SetDirty()
	t.pool.Unpin(f)
	return nil
}

func (t *Tree) alloc(nd *node) (pager.PageID, error) {
	f, err := t.pool.Alloc()
	if err != nil {
		return 0, err
	}
	nd.encode(f.Data)
	f.SetDirty()
	id := f.ID
	t.pool.Unpin(f)
	return id, nil
}

// splitPoint returns the key index at which to split an overflowing
// node so both halves' encoded sizes are near-balanced.
func (nd *node) splitPoint() int {
	itemSize := func(i int) int {
		sz := uvarintLen(uint64(len(nd.keys[i]))) + len(nd.keys[i])
		if nd.leaf {
			return sz + uvarintLen(uint64(len(nd.vals[i]))) + len(nd.vals[i])
		}
		return sz + 4
	}
	total := 0
	for i := range nd.keys {
		total += itemSize(i)
	}
	acc := 0
	for i := range nd.keys {
		acc += itemSize(i)
		if acc >= total/2 {
			if i+1 >= len(nd.keys) {
				return len(nd.keys) - 1
			}
			return i + 1
		}
	}
	return len(nd.keys) / 2
}

// childIndex returns the index of the child subtree that may contain key:
// the last separator <= key, plus one.
func (nd *node) childIndex(key []byte) int {
	lo, hi := 0, len(nd.keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if bytes.Compare(nd.keys[mid], key) <= 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// leafIndex returns (position, found) of key within a leaf.
func (nd *node) leafIndex(key []byte) (int, bool) {
	lo, hi := 0, len(nd.keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if bytes.Compare(nd.keys[mid], key) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(nd.keys) && bytes.Equal(nd.keys[lo], key)
}

// Get returns the value stored under key.
func (t *Tree) Get(key []byte) ([]byte, error) {
	return t.GetMetered(key, nil)
}

// GetMetered is Get with per-query I/O attribution: pool misses along
// the root-to-leaf path are charged to m. Safe for concurrent readers
// (the pool serializes its own bookkeeping; the meter is atomic).
func (t *Tree) GetMetered(key []byte, m *pager.Meter) ([]byte, error) {
	id := t.root
	for {
		nd, err := t.loadMetered(id, m)
		if err != nil {
			return nil, err
		}
		if nd.leaf {
			i, ok := nd.leafIndex(key)
			if !ok {
				return nil, ErrNotFound
			}
			return nd.vals[i], nil
		}
		id = nd.children[nd.childIndex(key)]
	}
}

// MaxItem returns the largest key+value size the tree accepts for its
// page size. The bound guarantees a byte-balanced split always fits:
// after an overflow the node holds at most pageSize + MaxItem payload
// bytes; the left half exceeds half the total by at most one item, so
// it stays within pageSize/2 + 1.5*MaxItem + header <= pageSize when
// MaxItem <= pageSize/3 - 8.
func (t *Tree) MaxItem() int { return t.pool.Disk().PageSize()/3 - 8 }

// Insert stores (key, value), replacing any existing value for key.
func (t *Tree) Insert(key, value []byte) error {
	maxItem := t.MaxItem()
	if len(key)+len(value) > maxItem {
		return fmt.Errorf("%w: %d bytes", ErrTooBig, len(key)+len(value))
	}
	sep, right, replaced, err := t.insert(t.root, key, value)
	if err != nil {
		return err
	}
	if !replaced {
		t.n++
	}
	if right != 0 {
		// Root split: new interior root.
		newRoot := &node{children: []pager.PageID{t.root, right}, keys: [][]byte{sep}}
		id, err := t.alloc(newRoot)
		if err != nil {
			return err
		}
		t.root = id
	}
	return nil
}

// insert descends into page id. On split it returns the separator key
// and the new right sibling's page id.
func (t *Tree) insert(id pager.PageID, key, value []byte) (sep []byte, right pager.PageID, replaced bool, err error) {
	nd, err := t.load(id)
	if err != nil {
		return nil, 0, false, err
	}
	if nd.leaf {
		i, found := nd.leafIndex(key)
		if found {
			nd.vals[i] = value
			replaced = true
		} else {
			nd.keys = append(nd.keys, nil)
			copy(nd.keys[i+1:], nd.keys[i:])
			nd.keys[i] = append([]byte(nil), key...)
			nd.vals = append(nd.vals, nil)
			copy(nd.vals[i+1:], nd.vals[i:])
			nd.vals[i] = append([]byte(nil), value...)
		}
	} else {
		ci := nd.childIndex(key)
		csep, cright, crep, cerr := t.insert(nd.children[ci], key, value)
		if cerr != nil {
			return nil, 0, false, cerr
		}
		replaced = crep
		if cright != 0 {
			nd.keys = append(nd.keys, nil)
			copy(nd.keys[ci+1:], nd.keys[ci:])
			nd.keys[ci] = csep
			nd.children = append(nd.children, 0)
			copy(nd.children[ci+2:], nd.children[ci+1:])
			nd.children[ci+1] = cright
		}
	}
	if nd.encodedSize() <= t.pool.Disk().PageSize() {
		return nil, 0, replaced, t.store(id, nd)
	}
	// Split: move the upper half to a new right sibling. The split point
	// balances bytes, not key counts — with variable-length keys a count
	// split can leave one half still oversized.
	mid := nd.splitPoint()
	var rightNode *node
	if nd.leaf {
		rightNode = &node{
			leaf: true,
			keys: append([][]byte(nil), nd.keys[mid:]...),
			vals: append([][]byte(nil), nd.vals[mid:]...),
			next: nd.next,
		}
		sep = append([]byte(nil), nd.keys[mid]...)
		nd.keys = nd.keys[:mid]
		nd.vals = nd.vals[:mid]
	} else {
		// The separator at mid moves up; children split around it.
		sep = append([]byte(nil), nd.keys[mid]...)
		rightNode = &node{
			keys:     append([][]byte(nil), nd.keys[mid+1:]...),
			children: append([]pager.PageID(nil), nd.children[mid+1:]...),
		}
		nd.keys = nd.keys[:mid]
		nd.children = nd.children[:mid+1]
	}
	rid, err := t.alloc(rightNode)
	if err != nil {
		return nil, 0, false, err
	}
	if nd.leaf {
		nd.next = rid
	}
	if err := t.store(id, nd); err != nil {
		return nil, 0, false, err
	}
	return sep, rid, replaced, nil
}

// Delete removes key. Pages are not rebalanced or reclaimed (lazy
// deletion); the directory workload is read-mostly.
func (t *Tree) Delete(key []byte) error {
	id := t.root
	for {
		nd, err := t.load(id)
		if err != nil {
			return err
		}
		if nd.leaf {
			i, ok := nd.leafIndex(key)
			if !ok {
				return ErrNotFound
			}
			nd.keys = append(nd.keys[:i], nd.keys[i+1:]...)
			nd.vals = append(nd.vals[:i], nd.vals[i+1:]...)
			t.n--
			return t.store(id, nd)
		}
		id = nd.children[nd.childIndex(key)]
	}
}

// Scan calls fn for each (key, value) with lo <= key < hi in key order,
// stopping if fn returns false. A nil hi means "to the end".
func (t *Tree) Scan(lo, hi []byte, fn func(key, value []byte) bool) error {
	return t.ScanMetered(lo, hi, nil, fn)
}

// ScanMetered is Scan with per-query I/O attribution (see GetMetered).
func (t *Tree) ScanMetered(lo, hi []byte, m *pager.Meter, fn func(key, value []byte) bool) error {
	id := t.root
	for {
		nd, err := t.loadMetered(id, m)
		if err != nil {
			return err
		}
		if nd.leaf {
			i, _ := nd.leafIndex(lo)
			for {
				for ; i < len(nd.keys); i++ {
					if hi != nil && bytes.Compare(nd.keys[i], hi) >= 0 {
						return nil
					}
					if !fn(nd.keys[i], nd.vals[i]) {
						return nil
					}
				}
				if nd.next == 0 {
					return nil
				}
				nd, err = t.loadMetered(nd.next, m)
				if err != nil {
					return err
				}
				i = 0
			}
		}
		id = nd.children[nd.childIndex(lo)]
	}
}

// ScanPrefix scans all keys beginning with prefix.
func (t *Tree) ScanPrefix(prefix []byte, fn func(key, value []byte) bool) error {
	hi := prefixUpperBound(prefix)
	return t.Scan(prefix, hi, fn)
}

// prefixUpperBound returns the smallest byte string greater than every
// string with the given prefix, or nil if there is none.
func prefixUpperBound(prefix []byte) []byte {
	hi := append([]byte(nil), prefix...)
	for i := len(hi) - 1; i >= 0; i-- {
		if hi[i] < 0xff {
			hi[i]++
			return hi[:i+1]
		}
	}
	return nil
}
