package workload

import (
	"testing"

	"repro/internal/core"
	"repro/internal/model"
)

func TestPaperInstanceValid(t *testing.T) {
	in := PaperInstance()
	if err := in.Validate(true); err != nil {
		t.Fatalf("paper instance invalid (strict forest): %v", err)
	}
	// The figures' headline entries exist with the attributes the prose
	// describes.
	jag, ok := in.Get(model.MustParseDN("uid=jag, ou=userProfiles, dc=research, dc=att, dc=com"))
	if !ok {
		t.Fatal("Fig 11: jag missing")
	}
	if !jag.HasClass("inetOrgPerson") || !jag.HasClass("TOPSSubscriber") {
		t.Error("Fig 11: jag classes wrong")
	}
	weekend, ok := in.Get(model.MustParseDN("QHPName=weekend, uid=jag, ou=userProfiles, dc=research, dc=att, dc=com"))
	if !ok {
		t.Fatal("Fig 11: weekend QHP missing")
	}
	if len(weekend.Values("daysOfWeek")) != 2 {
		t.Error("Fig 11: weekend daysOfWeek multi-value lost")
	}
	dso, ok := in.Get(model.MustParseDN("SLAPolicyName=dso, ou=SLAPolicyRules, ou=networkPolicies, dc=research, dc=att, dc=com"))
	if !ok {
		t.Fatal("Fig 12: dso policy missing")
	}
	if len(dso.Values("SLATPRef")) != 2 || len(dso.Values("SLAPVPRef")) != 2 || len(dso.Values("SLAExceptionRef")) != 2 {
		t.Error("Fig 12: dso references wrong")
	}
	pr, _ := dso.First("SLARulePriority")
	if pr.Int() != 2 {
		t.Error("Fig 12: dso priority wrong")
	}
}

func TestPaperWorkedQueries(t *testing.T) {
	// E13: the worked queries of Examples 5.2, 5.3, 6.1 and 7.1 return
	// exactly the entries the prose names, on the figures' data.
	dir, err := core.Open(PaperInstance(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}

	// Ex 5.2: traffic profiles used in network policies.
	res, err := dir.Search(`(a (dc=att, dc=com ? sub ? objectClass=trafficProfile)
	                           (dc=att, dc=com ? sub ? ou=networkPolicies))`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Entries) != 4 { // lsplitOff, csplitOff, ftpFromL, smtpFromL
		t.Errorf("Ex 5.2: %v", res.DNs())
	}

	// Ex 5.3: subnets with profiles governing SMTP traffic. The figure's
	// profile smtpFromL has destinationPort=25; the closest dcObject
	// ancestor is dc=research.
	res, err = dir.Search(`(dc (dc=att, dc=com ? sub ? objectClass=dcObject)
	                           (& (dc=att, dc=com ? sub ? destinationPort=25)
	                              (dc=att, dc=com ? sub ? objectClass=trafficProfile))
	                           (dc=att, dc=com ? sub ? objectClass=dcObject))`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Entries) != 1 || res.DNs()[0] != "dc=research, dc=att, dc=com" {
		t.Errorf("Ex 5.3: %v", res.DNs())
	}

	// Ex 6.1: policies with more than one validity period — only dso.
	res, err = dir.Search(`(g (dc=research, dc=att, dc=com ? sub ? objectClass=SLAPolicyRules)
	                          count(SLAPVPRef) > 1)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Entries) != 1 || res.Entries[0].DN().RDN().String() != "SLAPolicyName=dso" {
		t.Errorf("Ex 6.1: %v", res.DNs())
	}

	// Ex 7.1 (first query): policies whose profiles govern SMTP traffic
	// (port 25) — only the mail policy references smtpFromL.
	res, err = dir.Search(`(vd (dc=att, dc=com ? sub ? objectClass=SLAPolicyRules)
	                           (& (dc=att, dc=com ? sub ? destinationPort=25)
	                              (dc=att, dc=com ? sub ? objectClass=trafficProfile))
	                           SLATPRef)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Entries) != 1 || res.Entries[0].DN().RDN().String() != "SLAPolicyName=mail" {
		t.Errorf("Ex 7.1 vd: %v", res.DNs())
	}

	// Ex 7.1 (full composition): the action of the highest-priority such
	// policy — bestEffort.
	res, err = dir.Search(`(dv (dc=att, dc=com ? sub ? objectClass=SLADSAction)
	                           (g (vd (dc=att, dc=com ? sub ? objectClass=SLAPolicyRules)
	                                  (& (dc=att, dc=com ? sub ? destinationPort=25)
	                                     (dc=att, dc=com ? sub ? objectClass=trafficProfile))
	                                  SLATPRef)
	                              min(SLARulePriority)=min(min(SLARulePriority)))
	                           SLADSActRef)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Entries) != 1 || res.Entries[0].DN().RDN().String() != "DSActionName=bestEffort" {
		t.Errorf("Ex 7.1 full: %v", res.DNs())
	}
}

func TestRandomForestDeterministic(t *testing.T) {
	a := RandomForest(ForestConfig{N: 200, Seed: 5})
	b := RandomForest(ForestConfig{N: 200, Seed: 5})
	if a.Len() != b.Len() {
		t.Fatal("same seed, different sizes")
	}
	ea, eb := a.Entries(), b.Entries()
	for i := range ea {
		if !ea[i].Equal(eb[i]) {
			t.Fatalf("entry %d differs", i)
		}
	}
	c := RandomForest(ForestConfig{N: 200, Seed: 6})
	same := true
	for i, e := range c.Entries() {
		if i >= len(ea) || !e.Equal(ea[i]) {
			same = false
			break
		}
	}
	if same && c.Len() == a.Len() {
		t.Error("different seeds produced identical forests")
	}
}

func TestRandomForestValid(t *testing.T) {
	in := RandomForest(ForestConfig{N: 300, Seed: 9})
	if in.Len() != 300 {
		t.Fatalf("len = %d", in.Len())
	}
	if err := in.Validate(false); err != nil {
		t.Fatal(err)
	}
}

func TestRandomForestEmbeddingsClustered(t *testing.T) {
	in := RandomForest(ForestConfig{N: 400, Seed: 9, VecDim: 8})
	if err := in.Validate(false); err != nil {
		t.Fatal(err)
	}
	// Every entry carries exactly one embedding of the right dimension,
	// and the generator is deterministic.
	for _, e := range in.Entries() {
		vs := e.Values("emb")
		if len(vs) != 1 || len(vs[0].Vec()) != 8 {
			t.Fatalf("%s: emb = %v", e.DN(), vs)
		}
	}
	again := RandomForest(ForestConfig{N: 400, Seed: 9, VecDim: 8})
	for i, e := range in.Entries() {
		if !e.Equal(again.Entries()[i]) {
			t.Fatalf("entry %d differs across runs", i)
		}
	}
	// Cluster structure: entries sharing a top-level subtree sit far
	// closer together than entries from different subtrees.
	top := func(e *model.Entry) string { dn := e.DN(); return dn[len(dn)-1].String() }
	dist := func(a, b []float32) float64 {
		var s float64
		for i := range a {
			d := float64(a[i]) - float64(b[i])
			s += d * d
		}
		return s
	}
	var within, across float64
	var nw, na int
	es := in.Entries()
	for i := 0; i < len(es); i += 7 {
		for j := i + 1; j < len(es); j += 13 {
			vi, _ := es[i].First("emb")
			vj, _ := es[j].First("emb")
			d := dist(vi.Vec(), vj.Vec())
			if top(es[i]) == top(es[j]) {
				within, nw = within+d, nw+1
			} else {
				across, na = across+d, na+1
			}
		}
	}
	if nw == 0 || na == 0 {
		t.Skip("sample missed one of the pair classes")
	}
	if within/float64(nw)*4 > across/float64(na) {
		t.Errorf("clusters not separated: mean within = %g, mean across = %g", within/float64(nw), across/float64(na))
	}
}

func TestGenQoSShape(t *testing.T) {
	in := GenQoS(QoSConfig{Domains: 3, PoliciesPerDomain: 10, Seed: 2})
	if err := in.Validate(true); err != nil {
		t.Fatal(err)
	}
	dir, err := core.Open(in, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := dir.Search("(dc=att, dc=com ? sub ? objectClass=SLAPolicyRules)")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Entries) != 30 {
		t.Fatalf("policies = %d, want 30", len(res.Entries))
	}
	// Every policy's action reference resolves.
	for _, pol := range res.Entries {
		for _, ref := range pol.Values("SLADSActRef") {
			if _, err := dir.Get(ref.DN().String()); err != nil {
				t.Fatalf("dangling action ref %s", ref.DN())
			}
		}
	}
}

func TestGenTOPSShape(t *testing.T) {
	in := GenTOPS(TOPSConfig{Subscribers: 20, Seed: 3})
	if err := in.Validate(true); err != nil {
		t.Fatal(err)
	}
	dir, err := core.Open(in, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := dir.Search("(dc=com ? sub ? objectClass=TOPSSubscriber)")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Entries) != 20 {
		t.Fatalf("subscribers = %d", len(res.Entries))
	}
	// Each subscriber has at least one QHP; each QHP has at least one CA.
	res, err = dir.Search(`(c (dc=com ? sub ? objectClass=TOPSSubscriber)
	                          (dc=com ? sub ? objectClass=QHP))`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Entries) != 20 {
		t.Fatalf("subscribers with QHPs = %d", len(res.Entries))
	}
	res, err = dir.Search(`(- (dc=com ? sub ? objectClass=QHP)
	                          (c (dc=com ? sub ? objectClass=QHP)
	                             (dc=com ? sub ? objectClass=callAppearance)))`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Entries) != 0 {
		t.Fatalf("%d QHPs lack call appearances", len(res.Entries))
	}
}
