package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/model"
)

// ForestConfig parameterizes the generic random forest generator used by
// the algorithm experiments.
type ForestConfig struct {
	// N is the target number of entries.
	N int
	// MaxDepth caps tree depth (default 8).
	MaxDepth int
	// Tags is the number of distinct tag values (default 3).
	Tags int
	// MaxVals is the maximum number of val attributes per entry
	// (default 3; values uniform in [0, ValRange)).
	MaxVals  int
	ValRange int
	// RefsPerEntry is the maximum number of DN references per entry
	// (default 2).
	RefsPerEntry int
	// VecDim, when positive, gives every entry an "emb" embedding of
	// that dimension, clustered per subtree: each top-level subtree
	// draws a Gaussian centroid and its entries scatter around it with
	// standard deviation VecSpread. Subtree-scoped knn over such data is
	// selective — nearest neighbors of a subtree's centroid live in that
	// subtree — which is what Experiment E22 measures.
	VecDim int
	// VecSpread is the intra-cluster standard deviation (default 0.05;
	// centroids are uniform in [-1, 1] per coordinate).
	VecSpread float64
	// Seed makes the generator deterministic.
	Seed int64
}

func (c ForestConfig) withDefaults() ForestConfig {
	if c.MaxDepth <= 0 {
		c.MaxDepth = 8
	}
	if c.Tags <= 0 {
		c.Tags = 3
	}
	if c.MaxVals <= 0 {
		c.MaxVals = 3
	}
	if c.ValRange <= 0 {
		c.ValRange = 8
	}
	if c.RefsPerEntry < 0 {
		c.RefsPerEntry = 0
	} else if c.RefsPerEntry == 0 {
		c.RefsPerEntry = 2
	}
	if c.VecSpread <= 0 {
		c.VecSpread = 0.05
	}
	return c
}

// ForestSchema returns the schema random forests use: node entries with
// a name (n), a categorical tag, multi-valued ints (val) and DN
// references (ref).
func ForestSchema() *model.Schema {
	s := model.NewSchema()
	s.MustDefineAttr("n", model.TypeString)
	s.MustDefineAttr("tag", model.TypeString)
	s.MustDefineAttr("val", model.TypeInt)
	s.MustDefineAttr("ref", model.TypeDN)
	s.MustDefineClass("node", "n", "tag", "val", "ref")
	return s
}

// ForestVecSchema is ForestSchema plus a dim-dimensional "emb"
// embedding attribute; the schema RandomForest uses when VecDim is set.
func ForestVecSchema(dim int) *model.Schema {
	s := model.NewSchema()
	s.MustDefineAttr("n", model.TypeString)
	s.MustDefineAttr("tag", model.TypeString)
	s.MustDefineAttr("val", model.TypeInt)
	s.MustDefineAttr("ref", model.TypeDN)
	s.MustDefineAttr("emb", model.VectorType(dim))
	s.MustDefineClass("node", "n", "tag", "val", "ref", "emb")
	return s
}

// RandomForest generates a random directory forest per the config.
func RandomForest(cfg ForestConfig) *model.Instance {
	cfg = cfg.withDefaults()
	r := rand.New(rand.NewSource(cfg.Seed))
	schema := ForestSchema()
	if cfg.VecDim > 0 {
		schema = ForestVecSchema(cfg.VecDim)
	}
	in := model.NewInstance(schema)
	dns := []model.DN{nil}
	// centroids[i] is the embedding cluster center of dns[i]'s top-level
	// subtree; a fresh root child draws a fresh centroid, descendants
	// inherit it.
	centroids := [][]float64{nil}
	for i := 0; i < cfg.N; i++ {
		pi := r.Intn(len(dns))
		parent := dns[pi]
		if len(parent) >= cfg.MaxDepth {
			parent, pi = nil, 0
		}
		dn := parent.Child(model.RDN{{Attr: "n", Value: fmt.Sprintf("e%d", i)}})
		e, err := model.NewEntryFromDN(in.Schema(), dn)
		if err != nil {
			panic(err)
		}
		e.AddClass("node")
		e.Add("tag", model.String(string(rune('a'+r.Intn(cfg.Tags)))))
		for j := r.Intn(cfg.MaxVals + 1); j > 0; j-- {
			e.Add("val", model.Int(int64(r.Intn(cfg.ValRange))))
		}
		var centroid []float64
		if cfg.VecDim > 0 {
			centroid = centroids[pi]
			if centroid == nil { // new top-level subtree
				centroid = make([]float64, cfg.VecDim)
				for d := range centroid {
					centroid[d] = 2*r.Float64() - 1
				}
			}
			vec := make([]float32, cfg.VecDim)
			for d := range vec {
				vec[d] = float32(centroid[d] + r.NormFloat64()*cfg.VecSpread)
			}
			e.Add("emb", model.VectorValue(vec))
		}
		in.MustAdd(e)
		dns = append(dns, dn)
		centroids = append(centroids, centroid)
	}
	if cfg.RefsPerEntry > 0 {
		es := in.Entries()
		for _, e := range es {
			for j := r.Intn(cfg.RefsPerEntry + 1); j > 0; j-- {
				e.Add("ref", model.DNValue(es[r.Intn(len(es))].DN()))
			}
		}
	}
	return in
}

// QoSConfig parameterizes the QoS policy repository generator (the
// Figure 12 schema at scale).
type QoSConfig struct {
	// Domains is the number of subnets, each with its own
	// ou=networkPolicies subtree under dc=domN, dc=att, dc=com.
	Domains int
	// PoliciesPerDomain is the number of SLAPolicyRules per domain.
	PoliciesPerDomain int
	// ProfilesPerDomain / PeriodsPerDomain / ActionsPerDomain size the
	// referenced pools (defaults scale with policies).
	ProfilesPerDomain int
	PeriodsPerDomain  int
	ActionsPerDomain  int
	// ExceptionFraction is the per-policy probability (in percent) of
	// carrying an exception reference to another policy.
	ExceptionFraction int
	Seed              int64
}

func (c QoSConfig) withDefaults() QoSConfig {
	if c.Domains <= 0 {
		c.Domains = 1
	}
	if c.PoliciesPerDomain <= 0 {
		c.PoliciesPerDomain = 20
	}
	if c.ProfilesPerDomain <= 0 {
		c.ProfilesPerDomain = c.PoliciesPerDomain
	}
	if c.PeriodsPerDomain <= 0 {
		c.PeriodsPerDomain = (c.PoliciesPerDomain + 1) / 2
	}
	if c.ActionsPerDomain <= 0 {
		c.ActionsPerDomain = 4
	}
	if c.ExceptionFraction < 0 {
		c.ExceptionFraction = 0
	} else if c.ExceptionFraction == 0 {
		c.ExceptionFraction = 25
	}
	return c
}

// GenQoS builds a QoS policy repository: per domain, pools of traffic
// profiles, validity periods and actions, plus policies referencing
// them, following the namespace layout of Figure 12 ("partitioned based
// on functionality").
func GenQoS(cfg QoSConfig) *model.Instance {
	cfg = cfg.withDefaults()
	r := rand.New(rand.NewSource(cfg.Seed))
	in := model.NewInstance(model.DefaultSchema())
	mustEntry(in, "dc=com", []string{"dcObject"})
	mustEntry(in, "dc=att, dc=com", []string{"dcObject", "domain"})
	perms := []string{"Deny", "Permit", "Shape"}
	for d := 0; d < cfg.Domains; d++ {
		dom := fmt.Sprintf("dc=dom%d, dc=att, dc=com", d)
		mustEntry(in, dom, []string{"dcObject"})
		base := "ou=networkPolicies, " + dom
		mustEntry(in, base, []string{"organizationalUnit"})
		for _, ou := range []string{"SLAPolicyRules", "trafficProfile", "policyValidityPeriod", "SLADSAction"} {
			mustEntry(in, "ou="+ou+", "+base, []string{"organizationalUnit"})
		}
		for i := 0; i < cfg.ProfilesPerDomain; i++ {
			avs := [][2]string{
				{"SourceAddress", fmt.Sprintf("204.%d.%d.*", r.Intn(32), r.Intn(32))},
			}
			if r.Intn(2) == 0 {
				avs = append(avs, [2]string{"sourcePort", fmt.Sprint([]int{21, 22, 25, 80, 443}[r.Intn(5)])})
			}
			mustEntry(in, fmt.Sprintf("TPName=tp%d, ou=trafficProfile, %s", i, base),
				[]string{"trafficProfile"}, avs...)
		}
		for i := 0; i < cfg.PeriodsPerDomain; i++ {
			start := 19980101000000 + int64(r.Intn(300))*1000000
			avs := [][2]string{
				{"PVStartTime", fmt.Sprint(start)},
				{"PVEndTime", fmt.Sprint(start + int64(1+r.Intn(60))*1000000)},
			}
			for day := 1; day <= 7; day++ {
				if r.Intn(3) == 0 {
					avs = append(avs, [2]string{"PVDayOfWeek", fmt.Sprint(day)})
				}
			}
			mustEntry(in, fmt.Sprintf("PVPName=pvp%d, ou=policyValidityPeriod, %s", i, base),
				[]string{"policyValidityPeriod"}, avs...)
		}
		for i := 0; i < cfg.ActionsPerDomain; i++ {
			mustEntry(in, fmt.Sprintf("DSActionName=act%d, ou=SLADSAction, %s", i, base),
				[]string{"SLADSAction"},
				[2]string{"DSPermission", perms[r.Intn(len(perms))]},
				[2]string{"DSInProfilePeakRate", fmt.Sprint(1 + r.Intn(100))},
				[2]string{"DSDropPriority", fmt.Sprint(r.Intn(10))})
		}
		for i := 0; i < cfg.PoliciesPerDomain; i++ {
			avs := [][2]string{
				{"SLAPolicyScope", "DataTraffic"},
				{"SLARulePriority", fmt.Sprint(1 + r.Intn(5))},
				{"SLADSActRef", fmt.Sprintf("DSActionName=act%d, ou=SLADSAction, %s", r.Intn(cfg.ActionsPerDomain), base)},
			}
			for k := 1 + r.Intn(2); k > 0; k-- {
				avs = append(avs, [2]string{"SLATPRef",
					fmt.Sprintf("TPName=tp%d, ou=trafficProfile, %s", r.Intn(cfg.ProfilesPerDomain), base)})
			}
			for k := r.Intn(3); k > 0; k-- {
				avs = append(avs, [2]string{"SLAPVPRef",
					fmt.Sprintf("PVPName=pvp%d, ou=policyValidityPeriod, %s", r.Intn(cfg.PeriodsPerDomain), base)})
			}
			if i > 0 && r.Intn(100) < cfg.ExceptionFraction {
				avs = append(avs, [2]string{"SLAExceptionRef",
					fmt.Sprintf("SLAPolicyName=pol%d, ou=SLAPolicyRules, %s", r.Intn(i), base)})
			}
			mustEntry(in, fmt.Sprintf("SLAPolicyName=pol%d, ou=SLAPolicyRules, %s", i, base),
				[]string{"SLAPolicyRules"}, avs...)
		}
	}
	return in
}

// TOPSConfig parameterizes the TOPS subscriber directory generator (the
// Figure 11 shape at scale: namespace "partitioned by subscriber").
type TOPSConfig struct {
	Subscribers int
	// MaxQHPs is the maximum query handling profiles per subscriber.
	MaxQHPs int
	// MaxCAs is the maximum call appearances per QHP.
	MaxCAs int
	Seed   int64
}

func (c TOPSConfig) withDefaults() TOPSConfig {
	if c.Subscribers <= 0 {
		c.Subscribers = 50
	}
	if c.MaxQHPs <= 0 {
		c.MaxQHPs = 4
	}
	if c.MaxCAs <= 0 {
		c.MaxCAs = 3
	}
	return c
}

// GenTOPS builds a TOPS subscriber directory under
// ou=userProfiles, dc=research, dc=att, dc=com.
func GenTOPS(cfg TOPSConfig) *model.Instance {
	cfg = cfg.withDefaults()
	r := rand.New(rand.NewSource(cfg.Seed))
	in := model.NewInstance(model.DefaultSchema())
	Fig1(in)
	base := "ou=userProfiles, dc=research, dc=att, dc=com"
	mustEntry(in, base, []string{"organizationalUnit"})
	surnames := []string{"jagadish", "lakshmanan", "milo", "srivastava", "vista"}
	for s := 0; s < cfg.Subscribers; s++ {
		uid := fmt.Sprintf("sub%04d", s)
		subDN := fmt.Sprintf("uid=%s, %s", uid, base)
		mustEntry(in, subDN, []string{"inetOrgPerson", "TOPSSubscriber"},
			[2]string{"surName", surnames[r.Intn(len(surnames))]},
			[2]string{"commonName", "user " + uid})
		nq := 1 + r.Intn(cfg.MaxQHPs)
		for q := 0; q < nq; q++ {
			qDN := fmt.Sprintf("QHPName=qhp%d, %s", q, subDN)
			avs := [][2]string{{"priority", fmt.Sprint(q + 1)}}
			switch r.Intn(3) {
			case 0:
				start := 600 + r.Intn(600)
				avs = append(avs,
					[2]string{"startTime", fmt.Sprint(start)},
					[2]string{"endTime", fmt.Sprint(start + 300 + r.Intn(600))})
			case 1:
				avs = append(avs,
					[2]string{"daysOfWeek", fmt.Sprint(1 + r.Intn(7))},
					[2]string{"daysOfWeek", fmt.Sprint(1 + r.Intn(7))})
			}
			mustEntry(in, qDN, []string{"QHP"}, avs...)
			nc := 1 + r.Intn(cfg.MaxCAs)
			for c := 0; c < nc; c++ {
				mustEntry(in, fmt.Sprintf("CANumber=973%07d, %s", s*100+q*10+c, qDN),
					[]string{"callAppearance"},
					[2]string{"priority", fmt.Sprint(c + 1)},
					[2]string{"timeOut", fmt.Sprint(10 + r.Intn(50))})
			}
		}
	}
	return in
}
