// Package workload builds the directory instances the paper's figures
// show — the DNS-style upper levels of Figure 1, the TOPS fragment of
// Figure 11, and the QoS policy fragment of Figure 12 — plus synthetic
// generators that scale those shapes to arbitrary sizes for the
// experiments. All generators are deterministic in their seed.
package workload

import (
	"fmt"

	"repro/internal/model"
)

func mustEntry(in *model.Instance, dn string, classes []string, avs ...[2]string) *model.Entry {
	s := in.Schema()
	e, err := model.NewEntryFromDN(s, model.MustParseDN(dn))
	if err != nil {
		panic(err)
	}
	for _, c := range classes {
		e.AddClass(c)
	}
	for _, av := range avs {
		t, ok := s.AttrType(av[0])
		if !ok {
			panic(fmt.Sprintf("workload: unknown attribute %q", av[0]))
		}
		v, err := model.ParseValue(t, av[1])
		if err != nil {
			panic(err)
		}
		e.Add(av[0], v)
	}
	in.MustAdd(e)
	return e
}

// Fig1 adds the higher levels of the network directory information
// forest shown in Figure 1: dc=com and the att/research/corona chain.
func Fig1(in *model.Instance) {
	mustEntry(in, "dc=com", []string{"dcObject"})
	mustEntry(in, "dc=att, dc=com", []string{"dcObject", "domain"})
	mustEntry(in, "dc=research, dc=att, dc=com", []string{"dcObject"})
	mustEntry(in, "dc=corona, dc=research, dc=att, dc=com", []string{"dcObject"})
}

// Fig11 adds the TOPS fragment of Figure 11: Jagadish's subscriber
// entry under ou=userProfiles, his weekend and working-hours query
// handling profiles, and the two call appearances of the working-hours
// QHP. It assumes Fig1 (or at least dc=research, dc=att, dc=com) is
// present.
func Fig11(in *model.Instance) {
	mustEntry(in, "ou=userProfiles, dc=research, dc=att, dc=com",
		[]string{"organizationalUnit"})
	mustEntry(in, "uid=jag, ou=userProfiles, dc=research, dc=att, dc=com",
		[]string{"inetOrgPerson", "TOPSSubscriber"},
		[2]string{"commonName", "h jagadish"},
		[2]string{"surName", "jagadish"})
	mustEntry(in, "QHPName=workinghours, uid=jag, ou=userProfiles, dc=research, dc=att, dc=com",
		[]string{"QHP"},
		[2]string{"startTime", "830"},
		[2]string{"endTime", "1730"},
		[2]string{"priority", "2"})
	mustEntry(in, "QHPName=weekend, uid=jag, ou=userProfiles, dc=research, dc=att, dc=com",
		[]string{"QHP"},
		[2]string{"daysOfWeek", "6"},
		[2]string{"daysOfWeek", "7"},
		[2]string{"priority", "1"})
	mustEntry(in, "CANumber=9733608750, QHPName=workinghours, uid=jag, ou=userProfiles, dc=research, dc=att, dc=com",
		[]string{"callAppearance"},
		[2]string{"priority", "1"},
		[2]string{"timeOut", "30"})
	mustEntry(in, "CANumber=9733608751, QHPName=workinghours, uid=jag, ou=userProfiles, dc=research, dc=att, dc=com",
		[]string{"callAppearance"},
		[2]string{"priority", "2"},
		[2]string{"timeOut", "20"},
		[2]string{"description", "secretary"})
	// The weekend QHP's voice-mail appearance, which the prose mentions
	// ("his voice messaging mailbox may be the only call appearance
	// specified corresponding to his weekend QHP").
	mustEntry(in, "CANumber=vm-jag, QHPName=weekend, uid=jag, ou=userProfiles, dc=research, dc=att, dc=com",
		[]string{"callAppearance"},
		[2]string{"priority", "1"},
		[2]string{"timeOut", "60"},
		[2]string{"description", "voice mail"})
}

// Fig12 adds the QoS policy fragment of Figure 12: the networkPolicies
// organizational units and the dso policy with its traffic profile,
// validity period and action. It assumes dc=research, dc=att, dc=com is
// present.
func Fig12(in *model.Instance) {
	base := "ou=networkPolicies, dc=research, dc=att, dc=com"
	mustEntry(in, base, []string{"organizationalUnit"})
	for _, ou := range []string{"SLAPolicyRules", "trafficProfile", "policyValidityPeriod", "SLADSAction"} {
		mustEntry(in, "ou="+ou+", "+base, []string{"organizationalUnit"})
	}
	mustEntry(in, "TPName=lsplitOff, ou=trafficProfile, "+base,
		[]string{"trafficProfile"},
		[2]string{"SourceAddress", "204.178.16.*"})
	mustEntry(in, "TPName=csplitOff, ou=trafficProfile, "+base,
		[]string{"trafficProfile"},
		[2]string{"SourceAddress", "207.140.*.*"})
	mustEntry(in, "PVPName=1998weekend, ou=policyValidityPeriod, "+base,
		[]string{"policyValidityPeriod"},
		[2]string{"PVStartTime", "19980101060000"},
		[2]string{"PVEndTime", "19981231180000"},
		[2]string{"PVDayOfWeek", "6"},
		[2]string{"PVDayOfWeek", "7"})
	mustEntry(in, "PVPName=1998thanksgiving, ou=policyValidityPeriod, "+base,
		[]string{"policyValidityPeriod"},
		[2]string{"PVStartTime", "19981126000000"},
		[2]string{"PVEndTime", "19981126235959"})
	mustEntry(in, "DSActionName=denyAll, ou=SLADSAction, "+base,
		[]string{"SLADSAction"},
		[2]string{"DSPermission", "Deny"},
		[2]string{"DSInProfilePeakRate", "20"},
		[2]string{"DSDropPriority", "2"})
	mustEntry(in, "SLAPolicyName=dso, ou=SLAPolicyRules, "+base,
		[]string{"SLAPolicyRules"},
		[2]string{"SLAPolicyScope", "DataTraffic"},
		[2]string{"SLARulePriority", "2"},
		[2]string{"SLATPRef", "TPName=lsplitOff, ou=trafficProfile, " + base},
		[2]string{"SLATPRef", "TPName=csplitOff, ou=trafficProfile, " + base},
		[2]string{"SLAPVPRef", "PVPName=1998weekend, ou=policyValidityPeriod, " + base},
		[2]string{"SLAPVPRef", "PVPName=1998thanksgiving, ou=policyValidityPeriod, " + base},
		[2]string{"SLADSActRef", "DSActionName=denyAll, ou=SLADSAction, " + base},
		[2]string{"SLAExceptionRef", "SLAPolicyName=fatt, ou=SLAPolicyRules, " + base},
		[2]string{"SLAExceptionRef", "SLAPolicyName=mail, ou=SLAPolicyRules, " + base})
	// The two exception policies the prose mentions ("each of which is
	// itself a policy below ou=SLAPolicyRules ... not shown in the figure
	// for lack of space"): fatt lets file transfers from the lsplitOff
	// range through; mail lets SMTP through.
	mustEntry(in, "TPName=ftpFromL, ou=trafficProfile, "+base,
		[]string{"trafficProfile"},
		[2]string{"SourceAddress", "204.178.16.*"},
		[2]string{"destinationPort", "21"})
	mustEntry(in, "TPName=smtpFromL, ou=trafficProfile, "+base,
		[]string{"trafficProfile"},
		[2]string{"SourceAddress", "204.178.16.*"},
		[2]string{"destinationPort", "25"})
	mustEntry(in, "DSActionName=bestEffort, ou=SLADSAction, "+base,
		[]string{"SLADSAction"},
		[2]string{"DSPermission", "Permit"},
		[2]string{"DSInProfilePeakRate", "5"},
		[2]string{"DSDropPriority", "9"})
	mustEntry(in, "SLAPolicyName=fatt, ou=SLAPolicyRules, "+base,
		[]string{"SLAPolicyRules"},
		[2]string{"SLAPolicyScope", "DataTraffic"},
		[2]string{"SLARulePriority", "2"},
		[2]string{"SLATPRef", "TPName=ftpFromL, ou=trafficProfile, " + base},
		[2]string{"SLADSActRef", "DSActionName=bestEffort, ou=SLADSAction, " + base})
	mustEntry(in, "SLAPolicyName=mail, ou=SLAPolicyRules, "+base,
		[]string{"SLAPolicyRules"},
		[2]string{"SLAPolicyScope", "DataTraffic"},
		[2]string{"SLARulePriority", "2"},
		[2]string{"SLATPRef", "TPName=smtpFromL, ou=trafficProfile, " + base},
		[2]string{"SLADSActRef", "DSActionName=bestEffort, ou=SLADSAction, " + base})
}

// PaperInstance builds the complete sample directory of the paper:
// Figures 1, 11 and 12 in one instance.
func PaperInstance() *model.Instance {
	in := model.NewInstance(model.DefaultSchema())
	Fig1(in)
	Fig11(in)
	Fig12(in)
	return in
}
