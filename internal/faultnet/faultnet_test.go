package faultnet

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"runtime"
	"strings"
	"testing"
	"time"
)

// echoServer answers each line with "echo: <line>\n".
func echoServer(t *testing.T) (addr string, closeFn func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				sc := bufio.NewScanner(conn)
				for sc.Scan() {
					select {
					case <-done:
						return
					default:
					}
					fmt.Fprintf(conn, "echo: %s\n", sc.Text())
				}
			}()
		}
	}()
	return ln.Addr().String(), func() { close(done); ln.Close() }
}

func roundTrip(t *testing.T, addr, msg string, timeout time.Duration) (string, error) {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return "", err
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(timeout))
	if _, err := fmt.Fprintf(conn, "%s\n", msg); err != nil {
		return "", err
	}
	line, err := bufio.NewReader(conn).ReadString('\n')
	return strings.TrimSuffix(line, "\n"), err
}

func TestProxyModes(t *testing.T) {
	backend, closeBackend := echoServer(t)
	defer closeBackend()
	p, err := New(backend)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	// Pass: faithful relay.
	got, err := roundTrip(t, p.Addr(), "hello", time.Second)
	if err != nil || got != "echo: hello" {
		t.Fatalf("pass mode: %q, %v", got, err)
	}

	// Refuse: prompt failure, no hang.
	p.SetMode(Refuse)
	start := time.Now()
	if _, err := roundTrip(t, p.Addr(), "hello", time.Second); err == nil {
		t.Fatal("refuse mode answered")
	}
	if time.Since(start) > 500*time.Millisecond {
		t.Fatal("refuse mode was slow — it must fail fast")
	}

	// BlackHole: nothing comes back until the deadline.
	p.SetMode(BlackHole)
	start = time.Now()
	if _, err := roundTrip(t, p.Addr(), "hello", 200*time.Millisecond); err == nil {
		t.Fatal("blackhole mode answered")
	}
	if d := time.Since(start); d < 150*time.Millisecond {
		t.Fatalf("blackhole failed after only %v — it must hang until the deadline", d)
	}

	// Reset: a truncated answer then a cut, never the full line.
	p.SetMode(Reset)
	p.SetResetAfter(3)
	got, err = roundTrip(t, p.Addr(), "hello", time.Second)
	if err == nil && got == "echo: hello" {
		t.Fatal("reset mode delivered the full response")
	}
	if len(got) > 3 {
		t.Fatalf("reset mode forwarded %d bytes, cap 3", len(got))
	}

	// Garble: the bytes arrive, but corrupted.
	p.SetMode(Garble)
	got, err = roundTrip(t, p.Addr(), "hello", time.Second)
	if err != nil && got == "" {
		// Corruption may break line framing entirely; either way is a
		// visible failure, which is the point.
		return
	}
	if got == "echo: hello" {
		t.Fatal("garble mode delivered an intact response")
	}
}

// TestProxySetModeSeversLiveConns: flipping the fault mode must cut
// connections opened under the old mode — a pooled client cannot keep
// tunneling through a "partitioned" network.
func TestProxySetModeSeversLiveConns(t *testing.T) {
	backend, closeBackend := echoServer(t)
	defer closeBackend()
	p, err := New(backend)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(2 * time.Second))
	if _, err := fmt.Fprintf(conn, "one\n"); err != nil {
		t.Fatal(err)
	}
	r := bufio.NewReader(conn)
	if line, err := r.ReadString('\n'); err != nil || line != "echo: one\n" {
		t.Fatalf("healthy round trip: %q, %v", line, err)
	}

	p.SetMode(BlackHole)
	// The established tunnel must die: either the write or the read
	// fails now.
	_, werr := fmt.Fprintf(conn, "two\n")
	var rerr error
	if werr == nil {
		_, rerr = r.ReadString('\n')
	}
	if werr == nil && rerr == nil {
		t.Fatal("connection survived the partition")
	}
}

func TestProxyLatency(t *testing.T) {
	backend, closeBackend := echoServer(t)
	defer closeBackend()
	p, err := New(backend)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	p.SetLatency(100 * time.Millisecond)
	start := time.Now()
	got, err := roundTrip(t, p.Addr(), "slow", time.Second)
	if err != nil || got != "echo: slow" {
		t.Fatalf("latency mode: %q, %v", got, err)
	}
	if d := time.Since(start); d < 90*time.Millisecond {
		t.Fatalf("response arrived in %v despite 100ms injected latency", d)
	}
}

// TestProxyCloseJoinsGoroutines: Close must reap every relay
// goroutine, even with connections parked in a black hole.
func TestProxyCloseJoinsGoroutines(t *testing.T) {
	backend, closeBackend := echoServer(t)
	defer closeBackend()
	before := runtime.NumGoroutine()

	p, err := New(backend)
	if err != nil {
		t.Fatal(err)
	}
	p.SetMode(BlackHole)
	conns := make([]net.Conn, 0, 4)
	for i := 0; i < 4; i++ {
		c, err := net.Dial("tcp", p.Addr())
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(c, "swallowed\n")
		conns = append(conns, c)
	}
	time.Sleep(50 * time.Millisecond) // let the proxy park them
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	for _, c := range conns {
		// The severed client side: reads must fail promptly.
		_ = c.SetReadDeadline(time.Now().Add(500 * time.Millisecond))
		if _, err := io.ReadAll(c); err == nil {
			c.Close()
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+1 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Errorf("proxy goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
}

func TestModeString(t *testing.T) {
	for m, want := range map[Mode]string{
		Pass: "pass", Refuse: "refuse", BlackHole: "blackhole",
		Reset: "reset", Garble: "garble", Mode(99): "unknown",
	} {
		if got := m.String(); got != want {
			t.Errorf("Mode(%d).String() = %q, want %q", m, got, want)
		}
	}
}
