// Package faultnet is a TCP fault-injection harness: a proxy that sits
// between a client and a backend and injects the failures real
// networks produce — refused connections, partitions that black-hole
// traffic, added latency, mid-stream connection resets, and garbled
// response bytes. It extends the discipline of the engine's disk
// fault-injection tests ("never a panic, never a silent wrong answer")
// to the network layer: chaos tests route a directory server behind a
// Proxy and assert that distributed queries either fail over cleanly
// or return a clean, prompt error.
//
// Fault modes apply to new connections, and SetMode severs the
// connections already in flight — flipping the switch is the moment
// the network "breaks", exactly like a pulled cable. All goroutines a
// Proxy starts are joined by Close, so leak-checking tests stay quiet.
package faultnet

import (
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Mode selects the injected fault.
type Mode int32

const (
	// Pass forwards traffic faithfully.
	Pass Mode = iota
	// Refuse accepts and immediately closes connections: the fast
	// failure of a down service behind a live host.
	Refuse
	// BlackHole accepts connections and swallows all bytes without
	// ever answering: the slow failure of a partitioned network, only
	// a deadline gets the client out.
	BlackHole
	// Reset forwards the request but cuts the connection (RST) after
	// ResetAfter response bytes: a mid-stream failure that can leave a
	// syntactically truncated response at the client.
	Reset
	// Garble forwards the full exchange but corrupts response bytes: a
	// misbehaving middlebox or damaged stream.
	Garble
)

func (m Mode) String() string {
	switch m {
	case Pass:
		return "pass"
	case Refuse:
		return "refuse"
	case BlackHole:
		return "blackhole"
	case Reset:
		return "reset"
	case Garble:
		return "garble"
	default:
		return "unknown"
	}
}

// Proxy is a fault-injecting TCP proxy in front of one backend
// address. All methods are safe for concurrent use.
type Proxy struct {
	ln         net.Listener
	backend    string
	mode       atomic.Int32
	latency    atomic.Int64 // ns added before relaying each response chunk
	resetAfter atomic.Int64 // response bytes forwarded before the cut in Reset mode
	accepted   atomic.Int64

	mu    sync.Mutex
	conns map[net.Conn]struct{}

	wg        sync.WaitGroup
	done      chan struct{}
	closeOnce sync.Once
	closeErr  error
}

// New starts a proxy on an ephemeral 127.0.0.1 port forwarding to
// backend, in Pass mode.
func New(backend string) (*Proxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	p := &Proxy{
		ln:      ln,
		backend: backend,
		done:    make(chan struct{}),
		conns:   make(map[net.Conn]struct{}),
	}
	p.resetAfter.Store(16)
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr is the proxy's listen address — what clients should dial.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// Mode returns the current fault mode.
func (p *Proxy) Mode() Mode { return Mode(p.mode.Load()) }

// SetMode switches the injected fault for new connections and severs
// every connection currently relaying (the network just changed).
func (p *Proxy) SetMode(m Mode) {
	p.mode.Store(int32(m))
	p.mu.Lock()
	for c := range p.conns {
		abort(c)
	}
	p.mu.Unlock()
}

// SetLatency adds a delay before each relayed response chunk (applies
// in Pass, Reset, and Garble modes).
func (p *Proxy) SetLatency(d time.Duration) { p.latency.Store(int64(d)) }

// SetResetAfter sets how many response bytes Reset mode forwards
// before cutting the connection.
func (p *Proxy) SetResetAfter(n int64) { p.resetAfter.Store(n) }

// Accepted reports how many client connections the proxy has accepted
// — chaos tests use the delta to prove a tripped breaker stopped
// dialing a dead primary.
func (p *Proxy) Accepted() int64 { return p.accepted.Load() }

// Close stops the proxy, severs every connection, and joins all relay
// goroutines.
func (p *Proxy) Close() error {
	p.closeOnce.Do(func() {
		close(p.done)
		p.closeErr = p.ln.Close()
		p.mu.Lock()
		for c := range p.conns {
			_ = c.Close()
		}
		p.mu.Unlock()
		p.wg.Wait()
	})
	return p.closeErr
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			select {
			case <-p.done:
				return
			default:
				continue
			}
		}
		p.accepted.Add(1)
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			p.serveConn(conn)
		}()
	}
}

// track registers c for severing on SetMode/Close; the returned func
// forgets it.
func (p *Proxy) track(c net.Conn) func() {
	p.mu.Lock()
	p.conns[c] = struct{}{}
	p.mu.Unlock()
	return func() {
		p.mu.Lock()
		delete(p.conns, c)
		p.mu.Unlock()
	}
}

// abort closes a TCP connection with linger 0 so the peer sees a hard
// RST rather than a graceful EOF.
func abort(c net.Conn) {
	if tc, ok := c.(*net.TCPConn); ok {
		_ = tc.SetLinger(0)
	}
	_ = c.Close()
}

func (p *Proxy) serveConn(client net.Conn) {
	mode := p.Mode()
	switch mode {
	case Refuse:
		abort(client)
		return
	case BlackHole:
		defer p.track(client)()
		defer client.Close()
		_, _ = io.Copy(io.Discard, client) // swallow forever; Close severs
		return
	}

	backend, err := net.DialTimeout("tcp", p.backend, 2*time.Second)
	if err != nil {
		abort(client)
		return
	}
	defer p.track(client)()
	defer p.track(backend)()

	var once sync.Once
	closeBoth := func() {
		once.Do(func() {
			abort(client)
			abort(backend)
		})
	}

	p.wg.Add(1)
	go func() { // client -> backend: requests pass untouched
		defer p.wg.Done()
		_, _ = io.Copy(backend, client)
		closeBoth()
	}()

	// backend -> client: the faulty direction.
	p.relayResponses(mode, backend, client)
	closeBoth()
}

// relayResponses copies backend response bytes to the client, applying
// latency, garbling, or a mid-stream reset per mode.
func (p *Proxy) relayResponses(mode Mode, backend, client net.Conn) {
	buf := make([]byte, 4096)
	var forwarded int64
	for {
		n, err := backend.Read(buf)
		if n > 0 {
			if d := time.Duration(p.latency.Load()); d > 0 {
				if !p.sleep(d) {
					return
				}
			}
			chunk := buf[:n]
			if mode == Garble {
				for i := range chunk {
					chunk[i] ^= 0x5a
				}
			}
			if mode == Reset {
				if limit := p.resetAfter.Load(); forwarded+int64(n) >= limit {
					if keep := limit - forwarded; keep > 0 {
						_, _ = client.Write(chunk[:keep])
					}
					return // caller aborts both sides: RST mid-stream
				}
			}
			if _, werr := client.Write(chunk); werr != nil {
				return
			}
			forwarded += int64(n)
		}
		if err != nil {
			return
		}
	}
}

// sleep waits d unless the proxy closes first; false means shutting
// down.
func (p *Proxy) sleep(d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-p.done:
		return false
	case <-t.C:
		return true
	}
}
