// Package extsort implements external merge sort over paged record
// lists: bounded-memory run formation followed by multiway merging.
//
// It supplies the "sort LP based on the lexicographic ordering of the
// reverse of the dn's in the first column" step of Algorithm
// ComputeERAggDV (Figure 3 of "Querying Network Directories") and is
// responsible for the O((|L2|·m/B)·log(|L2|·m/B)) term in Theorem 7.1's
// I/O bound. It is also used to sort atomic-query outputs delivered by
// indexes that do not produce reverse-DN order.
//
// Unlike plist.Merge, the merge here preserves duplicate keys: the list
// of pairs LP legitimately contains several pairs with the same embedded
// DN.
package extsort

import (
	"io"
	"sort"

	"repro/internal/pager"
	"repro/internal/plist"
)

// Config tunes the sorter. The zero value gets sensible defaults.
type Config struct {
	// MemBytes bounds the in-memory run-formation buffer (default: 64
	// pages worth). Larger buffers mean fewer, longer runs.
	MemBytes int
	// FanIn bounds how many runs are merged per pass (default 16).
	FanIn int
}

func (c Config) withDefaults(d *pager.Disk) Config {
	if c.MemBytes <= 0 {
		c.MemBytes = 64 * d.PageSize()
	}
	if c.FanIn < 2 {
		c.FanIn = 16
	}
	return c
}

// Sort consumes records from in (any order) and returns a list sorted by
// key, duplicates preserved in stable order.
func Sort(d *pager.Disk, in plist.RecordReader, cfg Config) (*plist.List, error) {
	cfg = cfg.withDefaults(d)
	runs, err := formRuns(d, in, cfg)
	if err != nil {
		return nil, err
	}
	return mergeRuns(d, runs, cfg)
}

// SortSlice sorts an in-memory record slice onto disk; a convenience for
// operators that already materialized small intermediates.
func SortSlice(d *pager.Disk, recs []*plist.Record, cfg Config) (*plist.List, error) {
	return Sort(d, plist.NewSliceReader(recs), cfg)
}

// formRuns reads the input, accumulating up to MemBytes of records,
// sorting each batch in memory and writing it out as a sorted run.
func formRuns(d *pager.Disk, in plist.RecordReader, cfg Config) ([]*plist.List, error) {
	var (
		runs  []*plist.List
		batch []*plist.Record
		bytes int
	)
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		sort.SliceStable(batch, func(i, j int) bool { return batch[i].Key < batch[j].Key })
		w := plist.NewWriter(d)
		for _, r := range batch {
			if err := w.Append(r); err != nil {
				return err
			}
		}
		run, err := w.Close()
		if err != nil {
			return err
		}
		runs = append(runs, run)
		batch, bytes = batch[:0], 0
		return nil
	}
	for {
		rec, err := in.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		batch = append(batch, rec)
		bytes += len(rec.Key) + 64 // coarse in-memory footprint estimate
		if rec.Entry != nil {
			bytes += 32 * len(rec.Entry.Pairs())
		}
		if bytes >= cfg.MemBytes {
			if err := flush(); err != nil {
				return nil, err
			}
		}
	}
	if err := flush(); err != nil {
		return nil, err
	}
	return runs, nil
}

// mergeRuns repeatedly merges groups of FanIn runs until one remains.
func mergeRuns(d *pager.Disk, runs []*plist.List, cfg Config) (*plist.List, error) {
	if len(runs) == 0 {
		return plist.Build(d, nil)
	}
	for len(runs) > 1 {
		var next []*plist.List
		for lo := 0; lo < len(runs); lo += cfg.FanIn {
			hi := lo + cfg.FanIn
			if hi > len(runs) {
				hi = len(runs)
			}
			merged, err := mergeOnce(d, runs[lo:hi])
			if err != nil {
				return nil, err
			}
			for _, r := range runs[lo:hi] {
				if err := r.Free(); err != nil {
					return nil, err
				}
			}
			next = append(next, merged)
		}
		runs = next
	}
	return runs[0], nil
}

// mergeOnce merges sorted runs into one sorted list, preserving
// duplicate keys (stable across run order).
func mergeOnce(d *pager.Disk, runs []*plist.List) (*plist.List, error) {
	if len(runs) == 1 {
		// Copy so the caller may free the input uniformly.
		return plist.Materialize(d, runs[0].Reader())
	}
	readers := make([]*plist.Reader, len(runs))
	heads := make([]*plist.Record, len(runs))
	for i, r := range runs {
		readers[i] = r.Reader()
	}
	w := plist.NewWriter(d)
	for {
		min := -1
		for i := range readers {
			if heads[i] == nil && readers[i] != nil {
				rec, err := readers[i].Next()
				if err == io.EOF {
					readers[i] = nil
				} else if err != nil {
					return nil, err
				} else {
					heads[i] = rec
				}
			}
			if heads[i] != nil && (min == -1 || heads[i].Key < heads[min].Key) {
				min = i
			}
		}
		if min == -1 {
			return w.Close()
		}
		if err := w.Append(heads[min]); err != nil {
			return nil, err
		}
		heads[min] = nil
	}
}
