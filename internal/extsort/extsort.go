// Package extsort implements external merge sort over paged record
// lists: bounded-memory run formation followed by multiway merging.
//
// It supplies the "sort LP based on the lexicographic ordering of the
// reverse of the dn's in the first column" step of Algorithm
// ComputeERAggDV (Figure 3 of "Querying Network Directories") and is
// responsible for the O((|L2|·m/B)·log(|L2|·m/B)) term in Theorem 7.1's
// I/O bound. It is also used to sort atomic-query outputs delivered by
// indexes that do not produce reverse-DN order.
//
// Unlike plist.Merge, the merge here preserves duplicate keys: the list
// of pairs LP legitimately contains several pairs with the same embedded
// DN.
//
// With Config.Workers > 1 the sorter overlaps work in both phases:
// filled batches are sorted and written as runs by a bounded pool of
// goroutines while the input scan continues, and each merge pass merges
// its FanIn-sized groups concurrently. Batch boundaries, run order, and
// the merge tree are fixed by the input alone — never by goroutine
// scheduling — so the output list is identical for any worker count
// (DESIGN.md §9).
package extsort

import (
	"io"
	"sort"
	"sync"

	"repro/internal/pager"
	"repro/internal/plist"
)

// Config tunes the sorter. The zero value gets sensible defaults.
type Config struct {
	// MemBytes bounds the in-memory run-formation buffer (default: 64
	// pages worth). Larger buffers mean fewer, longer runs.
	MemBytes int
	// FanIn bounds how many runs are merged per pass (default 16).
	FanIn int
	// Workers bounds the goroutines used for concurrent run formation
	// and parallel merge passes; 0 or 1 sorts serially. With W workers
	// up to W batches are in flight at once, so peak run-formation
	// memory is W × MemBytes. Output is identical at any setting.
	Workers int
}

func (c Config) withDefaults(d *pager.Disk) Config {
	if c.MemBytes <= 0 {
		c.MemBytes = 64 * d.PageSize()
	}
	if c.FanIn < 2 {
		c.FanIn = 16
	}
	if c.Workers < 1 {
		c.Workers = 1
	}
	return c
}

// Sort consumes records from in (any order) and returns a list sorted by
// key, duplicates preserved in stable order.
func Sort(d *pager.Disk, in plist.RecordReader, cfg Config) (*plist.List, error) {
	cfg = cfg.withDefaults(d)
	runs, err := formRuns(d, in, cfg)
	if err != nil {
		return nil, err
	}
	return mergeRuns(d, runs, cfg)
}

// SortSlice sorts an in-memory record slice onto disk; a convenience for
// operators that already materialized small intermediates.
func SortSlice(d *pager.Disk, recs []*plist.Record, cfg Config) (*plist.List, error) {
	return Sort(d, plist.NewSliceReader(recs), cfg)
}

// formRuns reads the input, accumulating up to MemBytes of records,
// sorting each batch in memory and writing it out as a sorted run.
//
// The input scan is always serial (RecordReaders are single-goroutine),
// so batch boundaries — and therefore the runs' contents and order —
// are identical at every worker count. With Workers > 1 the sort+write
// of each filled batch is handed to a pool goroutine (ownership of the
// batch slice transfers with it; the scan allocates a fresh one) while
// the scan keeps reading.
func formRuns(d *pager.Disk, in plist.RecordReader, cfg Config) ([]*plist.List, error) {
	// runSlot receives one batch's finished run; slots are appended in
	// batch order, and workers fill their own slot through its pointer,
	// so slice growth in the scanning goroutine never races them.
	type runSlot struct {
		list *plist.List
		err  error
	}
	var (
		slots []*runSlot
		batch []*plist.Record
		bytes int
		wg    sync.WaitGroup
		sem   chan struct{}
	)
	if cfg.Workers > 1 {
		sem = make(chan struct{}, cfg.Workers)
	}
	writeRun := func(batch []*plist.Record, s *runSlot) {
		sort.SliceStable(batch, func(i, j int) bool { return batch[i].Key < batch[j].Key })
		w := plist.NewWriter(d)
		for _, r := range batch {
			if err := w.Append(r); err != nil {
				s.err = err
				return
			}
		}
		s.list, s.err = w.Close()
	}
	flush := func() {
		if len(batch) == 0 {
			return
		}
		s := &runSlot{}
		slots = append(slots, s)
		b := batch
		batch, bytes = nil, 0
		if sem == nil {
			writeRun(b, s)
			batch = b[:0] // serial path: safe to reuse the slice
			return
		}
		sem <- struct{}{} // bounds in-flight batches to Workers
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			writeRun(b, s)
		}()
	}
	var scanErr error
	for {
		rec, err := in.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			scanErr = err
			break
		}
		batch = append(batch, rec)
		bytes += len(rec.Key) + 64 // coarse in-memory footprint estimate
		if rec.Entry != nil {
			bytes += 32 * len(rec.Entry.Pairs())
		}
		if bytes >= cfg.MemBytes {
			flush()
		}
	}
	if scanErr == nil {
		flush()
	}
	wg.Wait()
	runs := make([]*plist.List, 0, len(slots))
	for _, s := range slots {
		if s.err != nil && scanErr == nil {
			scanErr = s.err
		}
		if s.list != nil {
			runs = append(runs, s.list)
		}
	}
	if scanErr != nil {
		for _, r := range runs {
			_ = r.Free()
		}
		return nil, scanErr
	}
	return runs, nil
}

// mergeRuns repeatedly merges groups of FanIn runs until one remains.
// Groups within a pass touch disjoint runs, so with Workers > 1 they
// merge concurrently; the next pass's run order is the group order
// either way, keeping the merge tree — and the final list — identical
// at any worker count.
func mergeRuns(d *pager.Disk, runs []*plist.List, cfg Config) (*plist.List, error) {
	if len(runs) == 0 {
		return plist.Build(d, nil)
	}
	for len(runs) > 1 {
		var groups [][]*plist.List
		for lo := 0; lo < len(runs); lo += cfg.FanIn {
			hi := lo + cfg.FanIn
			if hi > len(runs) {
				hi = len(runs)
			}
			groups = append(groups, runs[lo:hi])
		}
		next := make([]*plist.List, len(groups))
		errs := make([]error, len(groups))
		if cfg.Workers > 1 && len(groups) > 1 {
			sem := make(chan struct{}, cfg.Workers)
			var wg sync.WaitGroup
			for gi, g := range groups {
				sem <- struct{}{}
				wg.Add(1)
				go func(gi int, g []*plist.List) {
					defer wg.Done()
					defer func() { <-sem }()
					next[gi], errs[gi] = mergeGroup(d, g)
				}(gi, g)
			}
			wg.Wait()
		} else {
			for gi, g := range groups {
				next[gi], errs[gi] = mergeGroup(d, g)
			}
		}
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
		runs = next
	}
	return runs[0], nil
}

// mergeGroup merges one group of runs and frees the inputs (each group
// reads only its own runs, so concurrent groups never touch each
// other's pages).
func mergeGroup(d *pager.Disk, g []*plist.List) (*plist.List, error) {
	merged, err := mergeOnce(d, g)
	if err != nil {
		return nil, err
	}
	for _, r := range g {
		if err := r.Free(); err != nil {
			return nil, err
		}
	}
	return merged, nil
}

// mergeOnce merges sorted runs into one sorted list, preserving
// duplicate keys (stable across run order).
func mergeOnce(d *pager.Disk, runs []*plist.List) (*plist.List, error) {
	if len(runs) == 1 {
		// Copy so the caller may free the input uniformly.
		return plist.Materialize(d, runs[0].Reader())
	}
	readers := make([]*plist.Reader, len(runs))
	heads := make([]*plist.Record, len(runs))
	for i, r := range runs {
		readers[i] = r.Reader()
	}
	w := plist.NewWriter(d)
	for {
		min := -1
		for i := range readers {
			if heads[i] == nil && readers[i] != nil {
				rec, err := readers[i].Next()
				if err == io.EOF {
					readers[i] = nil
				} else if err != nil {
					return nil, err
				} else {
					heads[i] = rec
				}
			}
			if heads[i] != nil && (min == -1 || heads[i].Key < heads[min].Key) {
				min = i
			}
		}
		if min == -1 {
			return w.Close()
		}
		if err := w.Append(heads[min]); err != nil {
			return nil, err
		}
		heads[min] = nil
	}
}
