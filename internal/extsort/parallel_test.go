package extsort

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/pager"
	"repro/internal/plist"
)

// drainWitness flattens a sorted list into comparable (key, original
// position) pairs — position makes stability violations visible.
func drainWitness(t *testing.T, l *plist.List) []string {
	t.Helper()
	got, err := plist.Drain(l)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]string, len(got))
	for i, rec := range got {
		out[i] = fmt.Sprintf("%s/%d", rec.Key, rec.A)
	}
	return out
}

// TestParallelSortMatchesSerial is the extsort half of the DESIGN.md §9
// determinism claim: for any worker count the output sequence —
// including the stable order of duplicate keys — is identical to the
// serial sort, across batch and fan-in shapes that force multiple runs
// and multiple merge passes.
func TestParallelSortMatchesSerial(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	recs := randomRecords(r, 1500)
	shapes := []Config{
		{MemBytes: 512, FanIn: 2},
		{MemBytes: 1024, FanIn: 3},
		{MemBytes: 4096, FanIn: 16},
	}
	for _, shape := range shapes {
		serialCfg := shape
		serialCfg.Workers = 1
		ds := pager.NewDisk(256)
		ls, err := SortSlice(ds, recs, serialCfg)
		if err != nil {
			t.Fatal(err)
		}
		want := drainWitness(t, ls)
		for _, w := range []int{2, 4, 8} {
			cfg := shape
			cfg.Workers = w
			dp := pager.NewDisk(256)
			lp, err := SortSlice(dp, recs, cfg)
			if err != nil {
				t.Fatal(err)
			}
			got := drainWitness(t, lp)
			if fmt.Sprint(got) != fmt.Sprint(want) {
				t.Fatalf("MemBytes=%d FanIn=%d: Workers=%d output diverges from serial",
					shape.MemBytes, shape.FanIn, w)
			}
		}
	}
}

// TestParallelSortPreservesDuplicates re-runs the duplicate-preserving
// check through the concurrent path.
func TestParallelSortPreservesDuplicates(t *testing.T) {
	d := pager.NewDisk(256)
	var recs []*plist.Record
	for i := 0; i < 30; i++ {
		recs = append(recs, &plist.Record{Key: "dup", A: int64(i)})
	}
	recs = append(recs, &plist.Record{Key: "aaa"}, &plist.Record{Key: "zzz"})
	rand.New(rand.NewSource(2)).Shuffle(len(recs), func(i, j int) { recs[i], recs[j] = recs[j], recs[i] })
	l, err := SortSlice(d, recs, Config{MemBytes: 256, FanIn: 2, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	got, err := plist.Drain(l)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 32 {
		t.Fatalf("duplicates lost: %d", len(got))
	}
}

// TestParallelSortLeavesNoTempPages: concurrent run formation and
// merging must free every intermediate page, like the serial path.
func TestParallelSortLeavesNoTempPages(t *testing.T) {
	d := pager.NewDisk(256)
	r := rand.New(rand.NewSource(9))
	recs := randomRecords(r, 400)
	l, err := SortSlice(d, recs, Config{MemBytes: 600, FanIn: 2, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if d.NumPages() != l.Pages() {
		t.Fatalf("temp pages leaked: disk has %d, result needs %d", d.NumPages(), l.Pages())
	}
}
