package extsort

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/model"
	"repro/internal/pager"
	"repro/internal/plist"
)

func randomRecords(r *rand.Rand, n int) []*plist.Record {
	recs := make([]*plist.Record, n)
	for i := range recs {
		dn := model.MustParseDN(fmt.Sprintf("uid=u%06d, dc=d%d, dc=com", r.Intn(n*4), r.Intn(8)))
		e := model.NewEntry(dn)
		e.AddClass("x")
		recs[i] = plist.FromEntry(e)
		recs[i].A = int64(i) // original position, to check stability
	}
	return recs
}

func TestSortSmall(t *testing.T) {
	d := pager.NewDisk(256)
	r := rand.New(rand.NewSource(1))
	recs := randomRecords(r, 500)
	l, err := SortSlice(d, recs, Config{MemBytes: 1024, FanIn: 3})
	if err != nil {
		t.Fatal(err)
	}
	got, err := plist.Drain(l)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 500 {
		t.Fatalf("count = %d", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i-1].Key > got[i].Key {
			t.Fatalf("out of order at %d", i)
		}
	}
	// Same multiset of keys.
	want := make([]string, len(recs))
	for i, rec := range recs {
		want[i] = rec.Key
	}
	sort.Strings(want)
	for i := range got {
		if got[i].Key != want[i] {
			t.Fatalf("key multiset differs at %d: %q vs %q", i, got[i].Key, want[i])
		}
	}
}

func TestSortPreservesDuplicates(t *testing.T) {
	// The LP list of ComputeERAggDV can contain the same embedded DN many
	// times; all copies must survive.
	d := pager.NewDisk(256)
	var recs []*plist.Record
	for i := 0; i < 30; i++ {
		recs = append(recs, &plist.Record{Key: "dup", A: int64(i)})
	}
	recs = append(recs, &plist.Record{Key: "aaa"}, &plist.Record{Key: "zzz"})
	rand.New(rand.NewSource(2)).Shuffle(len(recs), func(i, j int) { recs[i], recs[j] = recs[j], recs[i] })
	l, err := SortSlice(d, recs, Config{MemBytes: 256, FanIn: 2})
	if err != nil {
		t.Fatal(err)
	}
	got, err := plist.Drain(l)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 32 {
		t.Fatalf("duplicates lost: %d", len(got))
	}
	nd := 0
	for _, rec := range got {
		if rec.Key == "dup" {
			nd++
		}
	}
	if nd != 30 {
		t.Fatalf("dup count = %d", nd)
	}
}

func TestSortEmpty(t *testing.T) {
	d := pager.NewDisk(256)
	l, err := SortSlice(d, nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if l.Count() != 0 {
		t.Fatalf("count = %d", l.Count())
	}
}

func TestSortAlreadySorted(t *testing.T) {
	d := pager.NewDisk(256)
	var recs []*plist.Record
	for i := 0; i < 200; i++ {
		recs = append(recs, &plist.Record{Key: fmt.Sprintf("k%06d", i)})
	}
	l, err := SortSlice(d, recs, Config{MemBytes: 512, FanIn: 4})
	if err != nil {
		t.Fatal(err)
	}
	got, err := plist.Drain(l)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i].Key != recs[i].Key {
			t.Fatalf("mismatch at %d", i)
		}
	}
}

func TestSortIONLogN(t *testing.T) {
	// I/O per input page must grow like the number of merge passes,
	// i.e. log_FanIn(runs) — not linearly with N.
	perPage := func(n int) float64 {
		d := pager.NewDisk(512)
		r := rand.New(rand.NewSource(int64(n)))
		recs := randomRecords(r, n)
		in, err := plist.Build(d, nil)
		_ = in
		if err != nil {
			t.Fatal(err)
		}
		d.ResetStats()
		l, err := SortSlice(d, recs, Config{MemBytes: 2 * 512, FanIn: 2})
		if err != nil {
			t.Fatal(err)
		}
		return float64(d.Stats().IO()) / float64(l.Pages())
	}
	small := perPage(200)
	big := perPage(3200) // 16x input, FanIn 2 => ~4 extra passes
	if big < small {
		t.Fatalf("I/O per page should grow with N for fixed memory: %f vs %f", small, big)
	}
	// But only logarithmically: 16x data must cost far less than 16x per page.
	if big > small*math.Log2(16)*2 {
		t.Fatalf("I/O per page grew superlogarithmically: %f vs %f", small, big)
	}
}

func TestSortLeavesNoTempPages(t *testing.T) {
	d := pager.NewDisk(256)
	r := rand.New(rand.NewSource(9))
	recs := randomRecords(r, 400)
	l, err := SortSlice(d, recs, Config{MemBytes: 600, FanIn: 2})
	if err != nil {
		t.Fatal(err)
	}
	if d.NumPages() != l.Pages() {
		t.Fatalf("temp pages leaked: disk has %d, result needs %d", d.NumPages(), l.Pages())
	}
}
