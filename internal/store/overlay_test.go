package store

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"repro/internal/model"
	"repro/internal/pager"
	"repro/internal/query"
)

// mutate applies a representative batch of entry-level ops to both the
// store (via ApplyOps on a fork) and the in-memory oracle instance.
func mutateBoth(t *testing.T, st *Store, in *model.Instance) (*Store, *pager.Disk) {
	t.Helper()
	s := in.Schema()
	mk := func(dn string, classes []string, avs ...func(*model.Entry)) *model.Entry {
		e, err := model.NewEntryFromDN(s, model.MustParseDN(dn))
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range classes {
			e.AddClass(c)
		}
		for _, f := range avs {
			f(e)
		}
		return e
	}
	newPerson := func(uid, sn string) *model.Entry {
		return mk(fmt.Sprintf("uid=%s, ou=userProfiles, dc=research, dc=att, dc=com", uid),
			[]string{"inetOrgPerson", "TOPSSubscriber"},
			func(e *model.Entry) {
				e.Add("surName", model.String(sn))
				e.Add("commonName", model.String("x "+sn))
			})
	}
	ops := []EntryOp{
		// Deletes: a leaf QHP and a person.
		{Remove: model.MustParseDN("QHPName=q0, uid=u0001, ou=userProfiles, dc=research, dc=att, dc=com")},
		{Remove: model.MustParseDN("uid=u0003, ou=userProfiles, dc=research, dc=att, dc=com")},
		// Adds: fresh people with a surname the build never saw.
		{Add: newPerson("u9000", "newcomer")},
		{Add: newPerson("u9001", "newcomer")},
		{Add: mk("QHPName=q9, uid=u9000, ou=userProfiles, dc=research, dc=att, dc=com",
			[]string{"QHP"}, func(e *model.Entry) {
				e.Add("priority", model.Int(42))
			})},
		// Update: delete + re-add the same DN with changed values.
		{Remove: model.MustParseDN("uid=u0002, ou=userProfiles, dc=research, dc=att, dc=com")},
		{Add: newPerson("u0002", "renamed")},
	}
	for _, op := range ops {
		if op.Add != nil {
			if err := in.Add(op.Add); err != nil {
				t.Fatal(err)
			}
		} else if !in.Remove(op.Remove) {
			t.Fatalf("oracle remove %s: not found", op.Remove)
		}
	}
	fork := st.Disk().Fork()
	ns, err := st.ApplyOps(fork, ops)
	if err != nil {
		t.Fatal(err)
	}
	return ns, fork
}

var overlayCases = append([]string{
	// Shapes that exercise the mutated values specifically.
	"(dc=com ? sub ? surName=newcomer)",
	"(dc=com ? sub ? surName=*come*)",
	"(dc=com ? sub ? surName=renamed)",
	"(dc=com ? sub ? priority>=42)",
	"(uid=u9000, ou=userProfiles, dc=research, dc=att, dc=com ? base ? objectClass=inetOrgPerson)",
	"(uid=u0003, ou=userProfiles, dc=research, dc=att, dc=com ? base ? objectClass=*)",
	"(uid=u9000, ou=userProfiles, dc=research, dc=att, dc=com ? one ? objectClass=QHP)",
}, atomicCases...)

func TestApplyOpsMatchesOracle(t *testing.T) {
	for _, indexed := range []bool{true, false} {
		in := buildTestInstance(t, 60)
		d := pager.NewDisk(pager.DefaultPageSize)
		st, err := Build(d, in, Options{AttrIndex: indexed})
		if err != nil {
			t.Fatal(err)
		}
		ns, _ := mutateBoth(t, st, in)
		for _, c := range overlayCases {
			q := query.MustParse(c).(*query.Atomic)
			want := oracle(in, q)
			l, err := ns.Eval(q)
			if err != nil {
				t.Fatalf("indexed=%v %s: %v", indexed, c, err)
			}
			if got := keysOf(t, l); fmt.Sprint(got) != fmt.Sprint(want) {
				t.Errorf("indexed=%v %s:\n got %v\nwant %v", indexed, c, got, want)
			}
			// Every forced access path must agree.
			for _, path := range []string{PathScan, PathIndex} {
				lp, err := ns.EvalPath(q, path)
				if err != nil {
					t.Fatalf("indexed=%v %s path=%s: %v", indexed, c, path, err)
				}
				if got := keysOf(t, lp); fmt.Sprint(got) != fmt.Sprint(want) {
					t.Errorf("indexed=%v %s path=%s:\n got %v\nwant %v", indexed, c, path, got, want)
				}
			}
		}
		// The unmutated store still answers from its own (old) snapshot.
		q := query.MustParse("(dc=com ? sub ? surName=newcomer)").(*query.Atomic)
		l, err := st.Eval(q)
		if err != nil {
			t.Fatal(err)
		}
		if got := keysOf(t, l); len(got) != 0 {
			t.Errorf("indexed=%v: published store sees post-fork entries: %v", indexed, got)
		}
	}
}

func TestApplyOpsReopenRoundTrip(t *testing.T) {
	in := buildTestInstance(t, 40)
	d := pager.NewDisk(pager.DefaultPageSize)
	st, err := Build(d, in, Options{AttrIndex: true})
	if err != nil {
		t.Fatal(err)
	}
	ns, fork := mutateBoth(t, st, in)
	man, err := ns.Manifest()
	if err != nil {
		t.Fatal(err)
	}
	var img bytes.Buffer
	if _, err := fork.WriteTo(&img); err != nil {
		t.Fatal(err)
	}
	disk, err := pager.ReadDisk(&img)
	if err != nil {
		t.Fatal(err)
	}
	ro, err := Reopen(disk, in.Schema(), man)
	if err != nil {
		t.Fatal(err)
	}
	if ro.Count() != ns.Count() {
		t.Fatalf("reopened count %d != %d", ro.Count(), ns.Count())
	}
	for _, c := range overlayCases {
		q := query.MustParse(c).(*query.Atomic)
		want := oracle(in, q)
		l, err := ro.Eval(q)
		if err != nil {
			t.Fatalf("%s: %v", c, err)
		}
		if got := keysOf(t, l); fmt.Sprint(got) != fmt.Sprint(want) {
			t.Errorf("reopened %s:\n got %v\nwant %v", c, got, want)
		}
	}
}

func TestApplyOpsGatesAndErrors(t *testing.T) {
	in := buildTestInstance(t, 10)
	d := pager.NewDisk(pager.DefaultPageSize)
	st, err := Build(d, in, Options{AttrIndex: true})
	if err != nil {
		t.Fatal(err)
	}
	s := in.Schema()
	apply := func(ops ...EntryOp) error {
		_, err := st.ApplyOps(st.Disk().Fork(), ops)
		return err
	}
	// Duplicate add.
	dup, err := model.NewEntryFromDN(s, model.MustParseDN("dc=att, dc=com"))
	if err != nil {
		t.Fatal(err)
	}
	if err := apply(EntryOp{Add: dup}); err == nil {
		t.Error("duplicate add accepted")
	}
	// Remove of a missing DN.
	if err := apply(EntryOp{Remove: model.MustParseDN("dc=nowhere")}); !errors.Is(err, ErrNoEntry) {
		t.Errorf("missing remove: %v", err)
	}
	// Vector-indexed entries fall back to a full rebuild.
	vec, err := model.NewEntryFromDN(s, model.MustParseDN("uid=v1, ou=userProfiles, dc=research, dc=att, dc=com"))
	if err != nil {
		t.Fatal(err)
	}
	vec.AddClass("inetOrgPerson")
	s.MustDefineAttr("profileEmbedding", model.VectorType(4))
	vec.Add("profileEmbedding", model.VectorValue([]float32{1, 2, 3, 4}))
	if err := apply(EntryOp{Add: vec}); !errors.Is(err, ErrNeedsRebuild) {
		t.Errorf("vector add: %v", err)
	}
	// Oversized records fall back to a full rebuild.
	big, err := model.NewEntryFromDN(s, model.MustParseDN("uid=big, ou=userProfiles, dc=research, dc=att, dc=com"))
	if err != nil {
		t.Fatal(err)
	}
	big.AddClass("inetOrgPerson")
	huge := make([]byte, 2048)
	for i := range huge {
		huge[i] = 'a'
	}
	big.Add("commonName", model.String(string(huge)))
	if err := apply(EntryOp{Add: big}); !errors.Is(err, ErrNeedsRebuild) {
		t.Errorf("oversized add: %v", err)
	}
}

// TestApplyOpsTouchesFewPages pins the tentpole property: an entry-level
// mutation dirties O(log N) pages on the fork, not the O(N) a full
// rebuild writes.
func TestApplyOpsTouchesFewPages(t *testing.T) {
	in := buildTestInstance(t, 400)
	d := pager.NewDisk(pager.DefaultPageSize)
	st, err := Build(d, in, Options{AttrIndex: true})
	if err != nil {
		t.Fatal(err)
	}
	e, err := model.NewEntryFromDN(in.Schema(), model.MustParseDN("uid=zz, ou=userProfiles, dc=research, dc=att, dc=com"))
	if err != nil {
		t.Fatal(err)
	}
	e.AddClass("inetOrgPerson")
	e.Add("surName", model.String("tiny"))
	fork := d.Fork()
	if _, err := st.ApplyOps(fork, []EntryOp{{Add: e}}); err != nil {
		t.Fatal(err)
	}
	dirty, total := fork.DirtyCount(), d.NumPages()
	if dirty > 64 {
		t.Errorf("single add dirtied %d pages; want O(log N)", dirty)
	}
	if dirty*10 > total {
		t.Errorf("single add dirtied %d of %d pages; a delta buys nothing", dirty, total)
	}
}
