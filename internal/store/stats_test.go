package store

import (
	"testing"

	"repro/internal/model"
	"repro/internal/pager"
	"repro/internal/query"
)

// truthPostings counts the (attr, value) pairs in the instance whose
// single value satisfies the filter — the quantity the catalog
// estimates.
func truthPostings(in *model.Instance, q *query.Atomic) int64 {
	var n int64
	for _, e := range in.Entries() {
		for _, v := range e.Values(q.Filter.Attr) {
			probe := model.NewEntry(e.DN())
			probe.Add(q.Filter.Attr, v)
			if q.Filter.Matches(in.Schema(), probe) {
				n++
			}
		}
	}
	return n
}

func TestCatalogEstimatesExact(t *testing.T) {
	in := buildTestInstance(t, 80)
	d := pager.NewDisk(1024)
	st, err := Build(d, in, Options{AttrIndex: true})
	if err != nil {
		t.Fatal(err)
	}
	cases := []string{
		"( ? sub ? surName=jagadish)",
		"( ? sub ? surName=*adi*)",
		"( ? sub ? priority<=1)",
		"( ? sub ? priority>2)",
		"( ? sub ? priority=2)",
		"( ? sub ? daysOfWeek=*)",
		"( ? sub ? objectClass=QHP)",
		"( ? sub ? surName=nobody)",
		"( ? sub ? priority<1)",
		"( ? sub ? priority>=1)",
	}
	for _, qs := range cases {
		q := query.MustParse(qs).(*query.Atomic)
		est, ok := st.stats.estimateHits(st, q)
		if !ok {
			t.Errorf("%s: estimate unavailable", qs)
			continue
		}
		if truth := truthPostings(in, q); est != truth {
			t.Errorf("%s: estimate %d, truth %d", qs, est, truth)
		}
	}
}

func TestPreferScanChoosesSensibly(t *testing.T) {
	in := buildTestInstance(t, 120)
	d := pager.NewDisk(1024)
	st, err := Build(d, in, Options{AttrIndex: true})
	if err != nil {
		t.Fatal(err)
	}
	// Whole-directory presence of a universal attribute: the scan must
	// win.
	broad := query.MustParse("( ? sub ? objectClass=*)").(*query.Atomic)
	if !st.preferScan(broad) {
		t.Error("preferScan(objectClass=*) = false; index plan would fetch every entry")
	}
	// A single rare value: the index must win.
	narrow := query.MustParse("( ? sub ? uid=u0003)").(*query.Atomic)
	if st.preferScan(narrow) {
		t.Error("preferScan(uid=u0003) = true; point query should use the index")
	}
	// A deep base makes even broad filters scan-cheap (exact scope
	// extent from the DN index) — any choice is fine, but the call must
	// not error; just exercise it.
	deep := query.MustParse("(uid=u0003, ou=userProfiles, dc=research, dc=att, dc=com ? sub ? objectClass=*)").(*query.Atomic)
	_ = st.preferScan(deep)
}

func TestCostBasedChoiceKeepsAnswers(t *testing.T) {
	// Whatever path the catalog picks, answers equal the forced scan.
	in := buildTestInstance(t, 100)
	d := pager.NewDisk(1024)
	st, err := Build(d, in, Options{AttrIndex: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, qs := range atomicCases {
		q := query.MustParse(qs).(*query.Atomic)
		a, err := st.Eval(q)
		if err != nil {
			t.Fatalf("%s: %v", qs, err)
		}
		b, err := st.EvalScan(q)
		if err != nil {
			t.Fatal(err)
		}
		ka, kb := keysOf(t, a), keysOf(t, b)
		if len(ka) != len(kb) {
			t.Errorf("%s: cost-based %d vs scan %d", qs, len(ka), len(kb))
		}
	}
}
