package store

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/filter"
	"repro/internal/model"
	"repro/internal/pager"
	"repro/internal/plist"
	"repro/internal/query"
)

// buildTestInstance creates a small directory with the shapes of the
// paper's figures: a dc hierarchy, org units, people and QHPs.
func buildTestInstance(t testing.TB, nPeople int) *model.Instance {
	t.Helper()
	s := model.DefaultSchema()
	in := model.NewInstance(s)
	add := func(dn string, classes []string, avs ...func(*model.Entry)) {
		e, err := model.NewEntryFromDN(s, model.MustParseDN(dn))
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range classes {
			e.AddClass(c)
		}
		for _, f := range avs {
			f(e)
		}
		if err := in.Add(e); err != nil {
			t.Fatalf("%s: %v", dn, err)
		}
	}
	add("dc=com", []string{"dcObject"})
	add("dc=att, dc=com", []string{"dcObject", "domain"})
	add("dc=research, dc=att, dc=com", []string{"dcObject"})
	add("dc=ibm, dc=com", []string{"dcObject"})
	add("ou=userProfiles, dc=research, dc=att, dc=com", []string{"organizationalUnit"})
	add("ou=networkPolicies, dc=research, dc=att, dc=com", []string{"organizationalUnit"})
	r := rand.New(rand.NewSource(17))
	surnames := []string{"jagadish", "lakshmanan", "milo", "srivastava", "vista"}
	for i := 0; i < nPeople; i++ {
		uid := fmt.Sprintf("u%04d", i)
		sn := surnames[r.Intn(len(surnames))]
		add(fmt.Sprintf("uid=%s, ou=userProfiles, dc=research, dc=att, dc=com", uid),
			[]string{"inetOrgPerson", "TOPSSubscriber"},
			func(e *model.Entry) {
				e.Add("surName", model.String(sn))
				e.Add("commonName", model.String("x "+sn))
			})
		nq := r.Intn(3)
		for j := 0; j < nq; j++ {
			add(fmt.Sprintf("QHPName=q%d, uid=%s, ou=userProfiles, dc=research, dc=att, dc=com", j, uid),
				[]string{"QHP"},
				func(e *model.Entry) {
					e.Add("priority", model.Int(int64(j+1)))
					if j == 0 {
						e.Add("daysOfWeek", model.Int(6))
						e.Add("daysOfWeek", model.Int(7))
					}
				})
		}
	}
	return in
}

// oracle evaluates an atomic query against the in-memory instance.
func oracle(in *model.Instance, q *query.Atomic) []string {
	var out []string
	k := q.Base.Key()
	depth := q.Base.Depth()
	in.Range(k, model.SubtreeHigh(k), func(e *model.Entry) bool {
		switch q.Scope {
		case query.ScopeBase:
			if e.Key() != k {
				return true
			}
		case query.ScopeOne:
			if model.KeyDepth(e.Key())-depth > 1 {
				return true
			}
		}
		if q.Filter.Matches(in.Schema(), e) {
			out = append(out, e.Key())
		}
		return true
	})
	return out
}

func keysOf(t *testing.T, l *plist.List) []string {
	t.Helper()
	recs, err := plist.Drain(l)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]string, len(recs))
	for i, r := range recs {
		out[i] = r.Key
		if r.Entry == nil {
			t.Fatal("result record lacks entry")
		}
		if r.Entry.Key() != r.Key {
			t.Fatal("record key does not match entry key")
		}
	}
	for i := 1; i < len(out); i++ {
		if out[i-1] >= out[i] {
			t.Fatal("result not strictly sorted by reverse-DN key")
		}
	}
	return out
}

var atomicCases = []string{
	// Index-supported equality / presence / wildcards / int ranges.
	"(dc=com ? sub ? surName=jagadish)",
	"(dc=att, dc=com ? sub ? surName=jagadish)",
	"(dc=research, dc=att, dc=com ? sub ? objectClass=QHP)",
	"(dc=com ? sub ? objectClass=organizationalUnit)",
	"(dc=com ? sub ? surName=*)",
	"(dc=com ? sub ? commonName=*jag*)",
	"(dc=com ? sub ? surName=j*)",
	"(dc=com ? sub ? surName=*a*a*)",
	"(dc=com ? sub ? priority<2)",
	"(dc=com ? sub ? priority<=2)",
	"(dc=com ? sub ? priority>1)",
	"(dc=com ? sub ? priority>=3)",
	"(dc=com ? sub ? priority=2)",
	"(dc=com ? sub ? daysOfWeek=7)",
	// Scopes.
	"(dc=com ? base ? objectClass=dcObject)",
	"(dc=com ? one ? objectClass=dcObject)",
	"(dc=att, dc=com ? one ? dc=*)",
	"(ou=userProfiles, dc=research, dc=att, dc=com ? one ? objectClass=inetOrgPerson)",
	// Root (null-dn) base.
	"( ? sub ? objectClass=dcObject)",
	// Misses.
	"(dc=org ? sub ? surName=jagadish)",
	"(dc=com ? sub ? surName=nobody)",
	"(dc=com ? sub ? priority>99)",
	"(dc=com ? base ? surName=jagadish)",
	// Scan-only shapes (approx, string order).
	"(dc=com ? sub ? surName~=JAGADISH)",
	"(dc=com ? sub ? surName>s)",
	"(dc=com ? sub ? surName<m)",
}

func TestEvalMatchesOracle(t *testing.T) {
	in := buildTestInstance(t, 60)
	for _, indexed := range []bool{true, false} {
		d := pager.NewDisk(1024)
		st, err := Build(d, in, Options{AttrIndex: indexed})
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range atomicCases {
			q := query.MustParse(c).(*query.Atomic)
			want := oracle(in, q)
			l, err := st.Eval(q)
			if err != nil {
				t.Fatalf("indexed=%v %s: %v", indexed, c, err)
			}
			got := keysOf(t, l)
			if fmt.Sprint(got) != fmt.Sprint(want) {
				t.Errorf("indexed=%v %s:\n got %d entries\nwant %d entries", indexed, c, len(got), len(want))
			}
		}
	}
}

func TestEvalScanAlwaysAgreesWithIndex(t *testing.T) {
	in := buildTestInstance(t, 40)
	d := pager.NewDisk(1024)
	st, err := Build(d, in, Options{AttrIndex: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range atomicCases {
		q := query.MustParse(c).(*query.Atomic)
		li, err := st.Eval(q)
		if err != nil {
			t.Fatal(err)
		}
		ls, err := st.EvalScan(q)
		if err != nil {
			t.Fatal(err)
		}
		gi, gs := keysOf(t, li), keysOf(t, ls)
		if fmt.Sprint(gi) != fmt.Sprint(gs) {
			t.Errorf("%s: index and scan disagree (%d vs %d)", c, len(gi), len(gs))
		}
	}
}

func TestGet(t *testing.T) {
	in := buildTestInstance(t, 5)
	d := pager.NewDisk(1024)
	st, err := Build(d, in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	e, err := st.Get(model.MustParseDN("dc=att, dc=com"))
	if err != nil {
		t.Fatal(err)
	}
	if !e.HasClass("domain") {
		t.Error("wrong entry fetched")
	}
	if _, err := st.Get(model.MustParseDN("dc=nowhere")); !errors.Is(err, ErrNoEntry) {
		t.Errorf("missing entry: %v", err)
	}
}

func TestEvalLDAP(t *testing.T) {
	in := buildTestInstance(t, 30)
	d := pager.NewDisk(1024)
	st, err := Build(d, in, Options{AttrIndex: true})
	if err != nil {
		t.Fatal(err)
	}
	q, err := query.ParseLDAP("(dc=com ? sub ? (&(objectClass=QHP)(priority<=1)))")
	if err != nil {
		t.Fatal(err)
	}
	l, err := st.EvalLDAP(q)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := plist.Drain(l)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("expected matches")
	}
	for _, r := range recs {
		if !r.Entry.HasClass("QHP") {
			t.Error("non-QHP in result")
		}
		v, _ := r.Entry.First("priority")
		if v.Int() > 1 {
			t.Error("priority filter violated")
		}
	}
}

func TestSubScopeIsContiguousScan(t *testing.T) {
	// A sub query under a deep base must not read master pages outside
	// the subtree range (plus a constant for seek and output).
	in := buildTestInstance(t, 200)
	d := pager.NewDisk(512)
	st, err := Build(d, in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	q := query.MustParse("(dc=ibm, dc=com ? sub ? objectClass=*)").(*query.Atomic)
	d.ResetStats()
	l, err := st.Eval(q)
	if err != nil {
		t.Fatal(err)
	}
	got := keysOf(t, l)
	if len(got) != 1 {
		t.Fatalf("ibm subtree = %d entries", len(got))
	}
	// The ibm subtree holds 1 entry; a full scan would read every master
	// page. Expect a handful of pages: btree descent + 1-2 master pages.
	if io := d.Stats().IO(); io > 15 {
		t.Errorf("tiny-subtree sub scan cost %d I/Os (master has %d pages)", io, st.MasterPages())
	}
}

func TestEvalStringConvenience(t *testing.T) {
	in := buildTestInstance(t, 5)
	d := pager.NewDisk(1024)
	st, _ := Build(d, in, Options{AttrIndex: true})
	l, err := st.EvalString("(dc=com ? sub ? objectClass=dcObject)")
	if err != nil {
		t.Fatal(err)
	}
	if l.Count() != 4 {
		t.Errorf("count = %d, want 4", l.Count())
	}
	if _, err := st.EvalString("(& (dc=com ? sub ? dc=*) (dc=com ? sub ? dc=*))"); err == nil {
		t.Error("composite accepted by EvalString")
	}
}

func TestUnknownAttributeFilter(t *testing.T) {
	in := buildTestInstance(t, 5)
	d := pager.NewDisk(1024)
	st, _ := Build(d, in, Options{AttrIndex: true})
	atom, err := filter.ParseAtom("nosuchattr=1")
	if err != nil {
		t.Fatal(err)
	}
	q := &query.Atomic{Base: nil, Scope: query.ScopeSub, Filter: atom}
	l, err := st.Eval(q)
	if err != nil {
		t.Fatal(err)
	}
	if l.Count() != 0 {
		t.Error("unknown attribute must match nothing")
	}
}
