package store

import (
	"fmt"
	"testing"

	"repro/internal/pager"
	"repro/internal/query"
)

// TestEvalPathByteIdentity pins the access-path oracle guarantee the
// cost-based planner relies on: for every atomic shape, every path the
// catalog enumerates evaluates to the byte-identical result — forcing
// a path moves I/O, never the answer.
func TestEvalPathByteIdentity(t *testing.T) {
	in := buildTestInstance(t, 60)
	d := pager.NewDisk(1024)
	st, err := Build(d, in, Options{AttrIndex: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range atomicCases {
		q := query.MustParse(c).(*query.Atomic)
		l, err := st.Eval(q)
		if err != nil {
			t.Fatal(err)
		}
		want := keysOf(t, l)
		paths := st.AccessPaths(q)
		if len(paths) == 0 {
			t.Fatalf("%s: no access paths", c)
		}
		for _, p := range paths {
			if p.EstPages < 1 {
				t.Errorf("%s path %s: EstPages %d < 1", c, p.Path, p.EstPages)
			}
			lp, err := st.EvalPath(q, p.Path)
			if err != nil {
				t.Fatalf("%s path %s: %v", c, p.Path, err)
			}
			got := keysOf(t, lp)
			if fmt.Sprint(got) != fmt.Sprint(want) {
				t.Errorf("%s: path %s disagrees with store choice (%d vs %d entries)",
					c, p.Path, len(got), len(want))
			}
		}
	}
}

// TestAccessPathsMatchStoreChoice: the catalog's first minimal-cost
// entry is the same path the store's own metered heuristic picks, so
// a cold cost model reproduces the pre-planner behavior exactly.
func TestAccessPathsMatchStoreChoice(t *testing.T) {
	in := buildTestInstance(t, 60)
	d := pager.NewDisk(1024)
	st, err := Build(d, in, Options{AttrIndex: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range atomicCases {
		q := query.MustParse(c).(*query.Atomic)
		// Empty scopes are degenerate: the scan extent is 0 bytes, the
		// store's heuristic distrusts it and keeps the index, and either
		// path reads nothing — no choice to agree on.
		if sb, err := st.scanBytes(q); err == nil && sb == 0 && q.Scope != query.ScopeBase {
			continue
		}
		paths := st.AccessPaths(q)
		best := 0
		for i := 1; i < len(paths); i++ {
			if paths[i].EstBytes < paths[best].EstBytes {
				best = i
			}
		}
		if got, want := paths[best].Path, st.ExplainAtomic(q).Path; got != want {
			t.Errorf("%s: catalog minimum %s, store chooses %s", c, got, want)
		}
	}
}
