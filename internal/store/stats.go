package store

import (
	"sort"

	"repro/internal/filter"
	"repro/internal/model"
	"repro/internal/pager"
	"repro/internal/query"
)

// catalog holds the statistics Build gathers for cost-based access-path
// selection: exact per-value counts for string/DN attributes and the
// sorted multiset of values for integer attributes. Like a commercial
// system's catalog, it is memory-resident; the data it summarizes is
// what lives on disk.
type catalog struct {
	avgRecBytes int64
	attrs       map[string]*attrStats
}

type attrStats struct {
	postings  int64            // total (attr, value) pairs
	strCounts map[string]int64 // per-value posting counts (string kinds)
	intVals   []int64          // sorted int values (multiset)
}

func newCatalog() *catalog { return &catalog{attrs: make(map[string]*attrStats)} }

func (c *catalog) observe(attr string, v model.Value) {
	if v.Kind() == model.KindVector {
		return // embeddings are summarized by the vector index itself
	}
	st := c.attrs[attr]
	if st == nil {
		st = &attrStats{strCounts: make(map[string]int64)}
		c.attrs[attr] = st
	}
	st.postings++
	switch v.Kind() {
	case model.KindInt:
		st.intVals = append(st.intVals, v.Int())
	case model.KindDN:
		st.strCounts[v.DN().Key()]++
	default:
		st.strCounts[v.Str()]++
	}
}

// clone deep-copies the catalog so the incremental mutation path can
// maintain a forked store's statistics without touching the published
// snapshot's.
func (c *catalog) clone() *catalog {
	out := &catalog{avgRecBytes: c.avgRecBytes, attrs: make(map[string]*attrStats, len(c.attrs))}
	for a, st := range c.attrs {
		ns := &attrStats{
			postings:  st.postings,
			strCounts: make(map[string]int64, len(st.strCounts)),
			intVals:   append([]int64(nil), st.intVals...),
		}
		for k, v := range st.strCounts {
			ns.strCounts[k] = v
		}
		out.attrs[a] = ns
	}
	return out
}

// observeSorted is observe for a finished catalog: integer values are
// inserted in place so intVals stays sorted without a full re-sort.
func (c *catalog) observeSorted(attr string, v model.Value) {
	if v.Kind() == model.KindVector {
		return
	}
	st := c.attrs[attr]
	if st == nil {
		st = &attrStats{strCounts: make(map[string]int64)}
		c.attrs[attr] = st
	}
	st.postings++
	switch v.Kind() {
	case model.KindInt:
		x := v.Int()
		i := sort.Search(len(st.intVals), func(i int) bool { return st.intVals[i] >= x })
		st.intVals = append(st.intVals, 0)
		copy(st.intVals[i+1:], st.intVals[i:])
		st.intVals[i] = x
	case model.KindDN:
		st.strCounts[v.DN().Key()]++
	default:
		st.strCounts[v.Str()]++
	}
}

// unobserve reverses one observe: entry deletion on the incremental
// path. Counts that reach zero are dropped so estimateHits stays exact.
func (c *catalog) unobserve(attr string, v model.Value) {
	if v.Kind() == model.KindVector {
		return
	}
	st := c.attrs[attr]
	if st == nil {
		return
	}
	st.postings--
	dec := func(k string) {
		if st.strCounts[k]--; st.strCounts[k] <= 0 {
			delete(st.strCounts, k)
		}
	}
	switch v.Kind() {
	case model.KindInt:
		x := v.Int()
		i := sort.Search(len(st.intVals), func(i int) bool { return st.intVals[i] >= x })
		if i < len(st.intVals) && st.intVals[i] == x {
			st.intVals = append(st.intVals[:i], st.intVals[i+1:]...)
		}
	case model.KindDN:
		dec(v.DN().Key())
	default:
		dec(v.Str())
	}
}

func (c *catalog) finish(totalBytes, count int64) {
	if count > 0 {
		c.avgRecBytes = totalBytes / count
	}
	for _, st := range c.attrs {
		sort.Slice(st.intVals, func(i, j int) bool { return st.intVals[i] < st.intVals[j] })
	}
}

// estimateHits returns an upper estimate of the number of index
// postings an atomic filter selects, and whether the estimate is
// usable.
func (c *catalog) estimateHits(s *Store, q *query.Atomic) (int64, bool) {
	t, _ := s.schema.AttrType(q.Filter.Attr)
	kind := model.TypeKind(t)
	if kind == model.KindVector {
		return 0, false // not catalogued; vector filters always scan or use vindex
	}
	st := c.attrs[q.Filter.Attr]
	if st == nil {
		return 0, true // attribute absent: nothing matches
	}
	switch q.Filter.Op {
	case filter.OpPresent:
		return st.postings, true
	case filter.OpEq:
		if kind == model.KindString && containsStar(q.Filter.Operand) {
			sfx := s.suffix[q.Filter.Attr]
			if sfx == nil {
				return 0, true
			}
			var sum int64
			for _, vi := range sfx.MatchWildcard(q.Filter.Operand) {
				sum += st.strCounts[sfx.Values()[vi]]
			}
			return sum, true
		}
		v, err := model.ParseValue(t, q.Filter.Operand)
		if err != nil {
			return 0, true
		}
		switch kind {
		case model.KindInt:
			return c.intRangeCount(st, v.Int(), v.Int()), true
		case model.KindDN:
			return st.strCounts[v.DN().Key()], true
		default:
			return st.strCounts[v.Str()], true
		}
	case filter.OpLT, filter.OpLE, filter.OpGT, filter.OpGE:
		if kind != model.KindInt {
			return 0, false
		}
		v, err := model.ParseValue(t, q.Filter.Operand)
		if err != nil {
			return 0, true
		}
		x := v.Int()
		switch q.Filter.Op {
		case filter.OpLT:
			return c.intRangeBelow(st, x-1), true
		case filter.OpLE:
			return c.intRangeBelow(st, x), true
		case filter.OpGT:
			return st.postings - c.intRangeBelow(st, x), true
		default: // GE
			return st.postings - c.intRangeBelow(st, x-1), true
		}
	default:
		return 0, false
	}
}

// intRangeBelow counts values <= x.
func (c *catalog) intRangeBelow(st *attrStats, x int64) int64 {
	return int64(sort.Search(len(st.intVals), func(i int) bool { return st.intVals[i] > x }))
}

func (c *catalog) intRangeCount(st *attrStats, lo, hi int64) int64 {
	return c.intRangeBelow(st, hi) - c.intRangeBelow(st, lo-1)
}

// scanBytes returns the exact master-byte extent of the query's scope
// range, measured through the DN index (two point probes).
func (s *Store) scanBytes(q *query.Atomic) (int64, error) {
	return s.scanBytesMetered(q, nil)
}

// scanBytesMetered is scanBytes with the two DN-index probes charged to
// the per-query meter (nil = uncharged).
func (s *Store) scanBytesMetered(q *query.Atomic, m *pager.Meter) (int64, error) {
	lo := q.Base.Key()
	hi := model.SubtreeHigh(lo)
	start, okStart, err := s.seekOffsetMetered(lo, m)
	if err != nil {
		return 0, err
	}
	if !okStart {
		return 0, nil
	}
	end, okEnd, err := s.seekOffsetMetered(hi, m)
	if err != nil {
		return 0, err
	}
	if !okEnd {
		end = s.masterBytes()
	}
	return end - start, nil
}

// The access-path names the store reports in Plan and PathCost and
// accepts back in EvalPath: a DN-index point lookup for base scopes,
// the attribute/suffix B+tree path, the contiguous scope scan, and the
// two exact knn paths of DESIGN.md §12.
const (
	PathBasePoint = "base-point"
	PathIndex     = "index"
	PathScan      = "scan"
	PathKNNIndex  = "knn-index"
	PathKNNScan   = "knn-scan"
)

// Plan describes how the store would evaluate an atomic query.
type Plan struct {
	// Path is one of "base-point", "index", "scan", "knn-index", or
	// "knn-scan".
	Path string
	// EstHits is the catalog's posting estimate (index-supported shapes
	// only; -1 when unavailable). For knn it is the requested k.
	EstHits int64
	// ScanBytes is the scope range's exact master extent.
	ScanBytes int64
}

// ExplainAtomic reports the access path Eval would choose, without
// evaluating.
func (s *Store) ExplainAtomic(q *query.Atomic) Plan {
	p := Plan{EstHits: -1}
	if q.Scope == query.ScopeBase {
		p.Path = PathBasePoint
		return p
	}
	if sb, err := s.scanBytes(q); err == nil {
		p.ScanBytes = sb
	}
	if q.Filter.Op == filter.OpKNN {
		p.EstHits = int64(q.Filter.K)
		ix := s.VectorIndex(q.Filter.Attr)
		if ix != nil && !s.preferKNNScanMetered(q, ix, nil) {
			p.Path = PathKNNIndex
		} else {
			p.Path = PathKNNScan
		}
		return p
	}
	if s.stats != nil {
		if est, ok := s.stats.estimateHits(s, q); ok {
			p.EstHits = est
		}
	}
	if s.attr != nil && !s.preferScan(q) && indexSupported(s, q) {
		p.Path = PathIndex
	} else {
		p.Path = PathScan
	}
	return p
}

// PathCost is one feasible access path for an atomic query, priced by
// the catalog: the byte volume the path is expected to read (the
// store's comparison currency), the same volume in ceil pages (what
// EXPLAIN prints), and the estimated result cardinality. The
// cost-based planner (internal/planner) enumerates these, calibrates
// them against observed statistics, and forces its choice back through
// EvalPath.
type PathCost struct {
	// Path is one of the Path* constants.
	Path string
	// EstBytes is the catalog-estimated bytes read by this path.
	EstBytes int64
	// EstPages is EstBytes rounded up to whole pages (minimum 1).
	EstPages int64
	// EstHits is the estimated result cardinality: the catalog's
	// posting estimate, k for knn, 1 for base-point, -1 unknown. It is
	// a property of the query, so every path of one atomic carries the
	// same value.
	EstHits int64
}

// AccessPaths enumerates every access path the store could take for q,
// each with the catalog's cost estimate, ordered the way the store's
// own tie-break prefers them (index paths before the scan). The first
// element whose EstBytes is minimal is exactly the path Eval would
// choose; ExplainAtomic, preferScan, and AccessPaths share one cost
// model, so they can never disagree.
func (s *Store) AccessPaths(q *query.Atomic) []PathCost {
	ps := int64(s.disk.PageSize())
	finish := func(out []PathCost) []PathCost {
		for i := range out {
			out[i].EstPages = (out[i].EstBytes + ps - 1) / ps
			if out[i].EstPages < 1 {
				out[i].EstPages = 1
			}
		}
		return out
	}
	if q.Scope == query.ScopeBase {
		// A DN-index probe plus one master record read; nothing to choose.
		return finish([]PathCost{{Path: PathBasePoint, EstBytes: 2 * ps, EstHits: 1}})
	}
	scan, err := s.scanBytes(q)
	if err != nil {
		scan = 0
	}
	if q.Filter.Op == filter.OpKNN {
		k := int64(q.Filter.K)
		var out []PathCost
		if ix := s.VectorIndex(q.Filter.Attr); ix != nil {
			out = append(out, PathCost{Path: PathKNNIndex, EstBytes: s.knnIndexCostBytes(q, ix), EstHits: k})
		}
		return finish(append(out, PathCost{Path: PathKNNScan, EstBytes: scan, EstHits: k}))
	}
	hits, hitsOK := int64(-1), false
	if s.stats != nil {
		if h, ok := s.stats.estimateHits(s, q); ok {
			hits, hitsOK = h, true
		}
	}
	var out []PathCost
	if s.attr != nil && hitsOK && indexSupported(s, q) {
		out = append(out, PathCost{Path: PathIndex, EstBytes: s.indexCostBytes(q, hits, scan), EstHits: hits})
	}
	return finish(append(out, PathCost{Path: PathScan, EstBytes: scan, EstHits: hits}))
}

// indexSupported mirrors indexEval's shape dispatch without running it.
func indexSupported(s *Store, q *query.Atomic) bool {
	t, ok := s.schema.AttrType(q.Filter.Attr)
	if !ok {
		return true // degenerate: resolved to empty by the index path
	}
	switch q.Filter.Op {
	case filter.OpPresent, filter.OpEq:
		return true
	case filter.OpLT, filter.OpLE, filter.OpGT, filter.OpGE:
		return model.TypeKind(t) == model.KindInt
	default:
		return false
	}
}

// preferScan decides, per the catalog, whether a scope scan is expected
// to beat the index for this filter. The single-range equality path
// streams hits in key order (roughly one master-page touch per hit
// page); the multi-range shapes (presence, wildcards, integer ranges)
// additionally spool, sort and de-duplicate the hits, so they carry a
// higher cost factor. Once the weighted hit volume approaches the
// scope's byte extent, the contiguous scan wins.
func (s *Store) preferScan(q *query.Atomic) bool {
	return s.preferScanMetered(q, nil)
}

// preferScanMetered is preferScan with its DN-index probes charged to
// the per-query meter.
func (s *Store) preferScanMetered(q *query.Atomic, m *pager.Meter) bool {
	if s.stats == nil {
		return false
	}
	hits, ok := s.stats.estimateHits(s, q)
	if !ok {
		return true // shapes the index cannot serve anyway
	}
	scan, err := s.scanBytesMetered(q, m)
	if err != nil || scan == 0 {
		return false
	}
	return s.indexCostBytes(q, hits, scan) > scan
}

// indexCostBytes is the catalog's byte-cost model for the
// attribute-index path, shared by preferScan (the store's own choice)
// and AccessPaths (the planner's enumeration). The catalog is
// instance-global: the index plan walks the full composite-key range
// for the filter (one leaf entry per global hit), but fetches master
// records only for hits inside the scope — the fetch volume is scaled
// by the scope's fraction of the master (attribute independence).
// Multi-range shapes (presence, wildcards, integer ranges) additionally
// spool, sort and de-duplicate the hits, so they carry a higher cost
// factor than the single-range equality path.
func (s *Store) indexCostBytes(q *query.Atomic, hits, scan int64) int64 {
	const leafEntryBytes = 64
	scopedHits := hits
	if mb := s.masterBytes(); mb > 0 && scan < mb {
		scopedHits = hits * scan / mb
	}
	factor := int64(2)
	if q.Filter.Op != filter.OpEq || containsStar(q.Filter.Operand) {
		factor = 4 // spool + external sort + fetch
	}
	return hits*leafEntryBytes + factor*scopedHits*s.stats.avgRecBytes
}

// AvgEntryBytes reports the average master-record size: the catalog's
// figure when present, the master extent divided by the entry count
// otherwise, and a 64-byte floor for empty stores. The cost model uses
// it to convert cardinalities into page volumes.
func (s *Store) AvgEntryBytes() int64 {
	if s.stats != nil && s.stats.avgRecBytes > 0 {
		return s.stats.avgRecBytes
	}
	if s.count > 0 {
		return s.masterBytes() / int64(s.count)
	}
	return 64
}

// PageSize reports the store disk's page size in bytes.
func (s *Store) PageSize() int { return s.disk.PageSize() }
