package store

import (
	"errors"
	"fmt"
	"io"

	"repro/internal/btree"
	"repro/internal/cowtree"
	"repro/internal/model"
	"repro/internal/pager"
	"repro/internal/plist"
	"repro/internal/strindex"
	"repro/internal/vindex"
)

// The entry overlay: a copy-on-write B-tree (internal/cowtree) keyed by
// reverse-DN key that masks the immutable master list. An entry-level
// mutation inserts a record (adds/updates) or a tombstone (deletes)
// into the overlay and adjusts the DN/attribute B+trees in place on a
// forked disk — O(log N) page writes — instead of rewriting the master.
// Index locators distinguish the two homes: a non-negative value is a
// master stream offset, overlayLoc marks "fetch from the overlay by
// reverse-DN key". Scans merge the master range with the overlay range
// (both are in reverse-DN key order; the overlay wins, tombstones
// mask), so every access path sees one consistent logical instance.

// Overlay value tags: first byte of a cowtree value.
const (
	ovTombstone byte = 0 // key deleted from the master view
	ovRecord    byte = 1 // encoded plist record follows
)

// overlayLoc is the index-locator sentinel for overlay-resident entries.
const overlayLoc = int64(-1)

// ErrNeedsRebuild reports a mutation outside the incremental fast
// path's envelope (vector-indexed values, oversized records): the
// caller must fall back to a full store rebuild.
var ErrNeedsRebuild = errors.New("store: mutation needs full rebuild")

// EntryOp is one entry-level mutation: exactly one of Add or Remove is
// set.
type EntryOp struct {
	// Add inserts this entry (its DN must not exist).
	Add *model.Entry
	// Remove deletes this DN (which must exist) when Add is nil.
	Remove model.DN
}

// overlayIO returns the cowtree callbacks over a disk.
func overlayIO(d *pager.Disk) cowtree.PageIO { return cowtree.DiskIO(d) }

// ApplyOps applies entry-level mutations incrementally: the caller
// forks the store's disk (pager.Disk.Fork) and receives a new Store
// over the fork sharing every untouched page with this one. On any
// error — including ErrNeedsRebuild for mutations outside the fast
// path — the fork is simply discarded; this store is never modified.
// The returned store's trees are flushed, so it is ready to publish
// and to checkpoint (the fork's Dirty set is the page delta).
func (s *Store) ApplyOps(fork *pager.Disk, ops []EntryOp) (*Store, error) {
	ns := &Store{
		disk:   fork,
		schema: s.schema,
		master: plist.Restore(fork, s.master.PageIDs(), s.master.Size(), s.master.Count()),
		dn:     btree.Open(fork, 64, s.dn.Root(), s.dn.Len()),
		count:  s.count,
	}
	if s.attr != nil {
		ns.attr = btree.Open(fork, 64, s.attr.Root(), s.attr.Len())
		ns.stats = s.stats.clone()
		ns.suffix = make(map[string]*strindex.SuffixIndex, len(s.suffix))
		for a, sx := range s.suffix {
			ns.suffix[a] = sx
		}
		ns.trie = make(map[string]*strindex.Trie, len(s.trie))
		for a, tr := range s.trie {
			ns.trie[a] = tr
		}
		if len(s.vecs) > 0 {
			ns.vecs = make(map[string]*vindex.Index, len(s.vecs))
			for a, ix := range s.vecs {
				rx, err := vindex.Restore(fork, ix.Manifest())
				if err != nil {
					return nil, err
				}
				ns.vecs[a] = rx
			}
		}
	}
	if s.over != nil {
		ns.over = cowtree.Open(overlayIO(fork), fork.PageSize(), s.over.Root(), s.over.Len())
	} else {
		ns.over = cowtree.New(overlayIO(fork), fork.PageSize())
	}

	newStr := make(map[string]map[string]bool)
	for i := range ops {
		op := &ops[i]
		var err error
		if op.Add != nil {
			err = ns.applyAdd(op.Add, newStr)
		} else {
			err = ns.applyRemove(op.Remove)
		}
		if err != nil {
			return nil, err
		}
	}
	if err := ns.refreshStringIndexes(newStr); err != nil {
		return nil, err
	}
	if err := ns.dn.Flush(); err != nil {
		return nil, err
	}
	if ns.attr != nil {
		if err := ns.attr.Flush(); err != nil {
			return nil, err
		}
	}
	return ns, nil
}

// entryVectorIndexed reports whether the entry carries a value the flat
// vector index would cover — the shape the incremental path gates to a
// full rebuild, since vindex posting lists are bulk-built.
func (s *Store) entryVectorIndexed(e *model.Entry) bool {
	for _, av := range e.Pairs() {
		if av.Value.Kind() != model.KindVector {
			continue
		}
		if t, ok := s.schema.AttrType(av.Attr); ok {
			if _, isVec := model.VectorDim(t); isVec {
				return true
			}
		}
	}
	return false
}

func (s *Store) applyAdd(e *model.Entry, newStr map[string]map[string]bool) error {
	if s.entryVectorIndexed(e) {
		return fmt.Errorf("%w: entry %s has vector-indexed values", ErrNeedsRebuild, e.DN())
	}
	key := e.Key()
	if _, err := s.dn.Get([]byte(key)); err == nil {
		return fmt.Errorf("store: entry exists: %s", e.DN())
	} else if !errors.Is(err, btree.ErrNotFound) {
		return err
	}
	raw := plist.AppendRecord([]byte{ovRecord}, plist.FromEntry(e))
	if len(key)+len(raw) > s.over.MaxItem() {
		return fmt.Errorf("%w: entry %s record exceeds overlay item limit", ErrNeedsRebuild, e.DN())
	}
	if _, err := s.over.Insert([]byte(key), raw); err != nil {
		return err
	}
	if err := s.dn.Insert([]byte(key), offsetValue(overlayLoc)); err != nil {
		return err
	}
	if s.attr != nil {
		for _, av := range e.Pairs() {
			if av.Value.Kind() == model.KindVector {
				continue // non-schema vectors are unindexed, like Build
			}
			if err := s.attr.Insert(compositeKey(av.Attr, ordValue(av.Value), key), offsetValue(overlayLoc)); err != nil {
				return err
			}
			s.stats.observeSorted(av.Attr, av.Value)
			if av.Value.Kind() == model.KindString {
				set := newStr[av.Attr]
				if set == nil {
					set = make(map[string]bool)
					newStr[av.Attr] = set
				}
				set[av.Value.Str()] = true
			}
		}
	}
	s.count++
	return nil
}

func (s *Store) applyRemove(dn model.DN) error {
	key := dn.Key()
	v, err := s.dn.Get([]byte(key))
	if errors.Is(err, btree.ErrNotFound) {
		return fmt.Errorf("%w: %s", ErrNoEntry, dn)
	}
	if err != nil {
		return err
	}
	var rec *plist.Record
	if off := decodeOffset(v); off >= 0 {
		if rec, _, err = s.master.RandomReader().ReadAt(off); err != nil {
			return err
		}
	} else if rec, err = s.overlayGet(key, nil); err != nil {
		return err
	}
	if s.entryVectorIndexed(rec.Entry) {
		return fmt.Errorf("%w: entry %s has vector-indexed values", ErrNeedsRebuild, dn)
	}
	if err := s.dn.Delete([]byte(key)); err != nil {
		return err
	}
	if s.attr != nil {
		for _, av := range rec.Entry.Pairs() {
			if av.Value.Kind() == model.KindVector {
				continue
			}
			if err := s.attr.Delete(compositeKey(av.Attr, ordValue(av.Value), key)); err != nil {
				return err
			}
			s.stats.unobserve(av.Attr, av.Value)
		}
	}
	// Always tombstone: the key may shadow a master record (including
	// through an earlier delete+add cycle), and a tombstone over a key
	// the master never held is skipped harmlessly by the merge.
	if _, err := s.over.Insert([]byte(key), []byte{ovTombstone}); err != nil {
		return err
	}
	s.count--
	return nil
}

// refreshStringIndexes rebuilds the suffix/trie indexes of attributes
// that gained string values. Deletions leave stale values behind — an
// over-inclusive wildcard range scans an empty posting range, which is
// harmless; Reopen and the next full rebuild shed them.
func (s *Store) refreshStringIndexes(newStr map[string]map[string]bool) error {
	for attr, set := range newStr {
		vals := make([]string, 0, len(set))
		seen := make(map[string]bool, len(set))
		if old := s.suffix[attr]; old != nil {
			for _, v := range old.Values() {
				seen[v] = true
				vals = append(vals, v)
			}
		}
		changed := false
		for v := range set {
			if !seen[v] {
				vals = append(vals, v)
				changed = true
			}
		}
		if !changed {
			continue
		}
		s.suffix[attr] = strindex.BuildSuffix(vals)
		tr := strindex.NewTrie()
		for _, v := range vals {
			tr.Insert(v)
		}
		s.trie[attr] = tr
	}
	return nil
}

// overlayGet fetches the live overlay record stored under key.
func (s *Store) overlayGet(key string, m *pager.Meter) (*plist.Record, error) {
	if s.over == nil {
		return nil, fmt.Errorf("store: overlay record %q missing (no overlay)", key)
	}
	v, ok, err := s.over.Get([]byte(key), m)
	if err != nil {
		return nil, err
	}
	if !ok || len(v) == 0 || v[0] != ovRecord {
		return nil, fmt.Errorf("store: overlay record %q missing", key)
	}
	return plist.DecodeRecord(v[1:])
}

// fetchAt materializes the entry behind an index locator: a master
// stream offset, or the overlay record under key when the locator is
// overlayLoc.
func (env *evalEnv) fetchAt(rr *plist.RandomReader, key string, off int64) (*plist.Record, error) {
	if off >= 0 {
		rec, _, err := rr.ReadAt(off)
		return rec, err
	}
	return env.s.overlayGet(key, env.m)
}

// mergedIter streams the live entries of one key range: the master
// stream merged with the overlay in reverse-DN key order. The overlay
// wins equal keys (an updated entry masks its master image) and
// tombstones suppress master records. Offsets are master stream
// positions, overlayLoc for overlay-resident records.
type mergedIter struct {
	hi       string // exclusive upper bound; "" = unbounded
	nextBase func() (*plist.Record, int64, error)
	ov       *cowtree.Iter

	baseRec     *plist.Record
	baseOff     int64
	basePending bool
}

func (mi *mergedIter) pastHi(key string) bool { return mi.hi != "" && key >= mi.hi }

// Next returns the next live record, or nil at the end of the range.
func (mi *mergedIter) Next() (*plist.Record, int64, error) {
	for {
		if !mi.basePending {
			rec, off, err := mi.nextBase()
			if err != nil {
				return nil, 0, err
			}
			if rec != nil && mi.pastHi(rec.Key) {
				rec = nil
			}
			mi.baseRec, mi.baseOff, mi.basePending = rec, off, true
		}
		ovOK := mi.ov != nil && mi.ov.Valid() && !mi.pastHi(string(mi.ov.Key()))
		if mi.ov != nil && mi.ov.Err() != nil {
			return nil, 0, mi.ov.Err()
		}
		if !ovOK {
			if mi.baseRec == nil {
				return nil, 0, nil
			}
			rec, off := mi.baseRec, mi.baseOff
			mi.basePending = false
			return rec, off, nil
		}
		okey := string(mi.ov.Key())
		if mi.baseRec != nil && mi.baseRec.Key < okey {
			rec, off := mi.baseRec, mi.baseOff
			mi.basePending = false
			return rec, off, nil
		}
		// Overlay at or before the base: it wins; an equal base key is
		// masked (updated or tombstoned).
		if mi.baseRec != nil && mi.baseRec.Key == okey {
			mi.basePending = false
		}
		val := mi.ov.Val()
		if len(val) == 0 || val[0] == ovTombstone {
			mi.ov.Next()
			continue
		}
		rec, err := plist.DecodeRecord(val[1:])
		if err != nil {
			return nil, 0, err
		}
		mi.ov.Next()
		return rec, overlayLoc, nil
	}
}

// mergedScan opens a merged iterator over [lo, hi) with the master side
// streamed sequentially (the scan evaluation path). hi == "" means
// unbounded.
func (env *evalEnv) mergedScan(lo, hi string) (*mergedIter, error) {
	s := env.s
	off, found, err := s.seekOffsetMetered(lo, env.m)
	if err != nil {
		return nil, err
	}
	var rd *plist.Reader
	if found {
		if rd, err = s.master.MeteredReaderAt(off, env.m); err != nil {
			return nil, err
		}
	}
	mi := &mergedIter{hi: hi, nextBase: func() (*plist.Record, int64, error) {
		if rd == nil {
			return nil, 0, nil
		}
		rec, err := rd.Next()
		if err == io.EOF {
			return nil, 0, nil
		}
		if err != nil {
			return nil, 0, err
		}
		return rec, overlayLoc, nil // sequential source: offset unused
	}}
	if s.over != nil && s.over.Len() > 0 {
		mi.ov = s.over.Seek([]byte(lo), env.m)
	}
	return mi, nil
}

// mergedScanOff is mergedScan with the master side read through the
// random reader so every record carries its stream offset — the knn
// scan needs offsets to re-fetch winners.
func (env *evalEnv) mergedScanOff(lo, hi string) (*mergedIter, error) {
	s := env.s
	off, found, err := s.seekOffsetMetered(lo, env.m)
	if err != nil {
		return nil, err
	}
	end := s.masterBytes()
	rr := s.master.MeteredRandomReader(env.m)
	mi := &mergedIter{hi: hi, nextBase: func() (*plist.Record, int64, error) {
		if !found || off >= end {
			return nil, 0, nil
		}
		rec, next, err := rr.ReadAt(off)
		if err != nil {
			return nil, 0, err
		}
		recOff := off
		off = next
		return rec, recOff, nil
	}}
	if s.over != nil && s.over.Len() > 0 {
		mi.ov = s.over.Seek([]byte(lo), env.m)
	}
	return mi, nil
}

// forEachLiveEntry streams every live entry (master overlaid) in key
// order; Reopen uses it to rebuild the in-memory indexes so a
// recovered store matches the live one the overlay described.
func (s *Store) forEachLiveEntry(fn func(*plist.Record) error) error {
	env := &evalEnv{s: s}
	mi, err := env.mergedScan("", "")
	if err != nil {
		return err
	}
	for {
		rec, _, err := mi.Next()
		if err != nil {
			return err
		}
		if rec == nil {
			return nil
		}
		if err := fn(rec); err != nil {
			return err
		}
	}
}

// OverlayLen reports the number of overlay keys (records plus
// tombstones) masking the master list — 0 on a freshly built store.
// Compaction policy (core) uses it to decide when a full rebuild is
// worth folding the overlay back in.
func (s *Store) OverlayLen() int {
	if s.over == nil {
		return 0
	}
	return s.over.Len()
}
