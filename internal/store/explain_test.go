package store

import (
	"testing"

	"repro/internal/pager"
	"repro/internal/query"
)

func TestExplainAtomicPaths(t *testing.T) {
	in := buildTestInstance(t, 60)
	d := pager.NewDisk(1024)
	st, err := Build(d, in, Options{AttrIndex: true})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		q    string
		path string
	}{
		{"(dc=com ? base ? objectClass=*)", "base-point"},
		{"( ? sub ? uid=u0003)", "index"},
		{"( ? sub ? objectClass=*)", "scan"},
		{"( ? sub ? surName~=JAGADISH)", "scan"}, // approx: not index-supported
		{"( ? sub ? surName>m)", "scan"},         // string order: not index-supported
	}
	for _, c := range cases {
		q := query.MustParse(c.q).(*query.Atomic)
		p := st.ExplainAtomic(q)
		if p.Path != c.path {
			t.Errorf("ExplainAtomic(%s).Path = %s, want %s", c.q, p.Path, c.path)
		}
	}
	// Without the attribute index every non-base plan is a scan.
	stScan, err := Build(pager.NewDisk(1024), in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	p := stScan.ExplainAtomic(query.MustParse("( ? sub ? uid=u0003)").(*query.Atomic))
	if p.Path != "scan" || p.EstHits != -1 {
		t.Errorf("unindexed plan = %+v", p)
	}
	if !st.Indexed() || stScan.Indexed() {
		t.Error("Indexed() accessor wrong")
	}
	if st.MasterPages() == 0 || st.Schema() == nil || st.Count() != in.Len() || st.Disk() == nil {
		t.Error("accessors wrong")
	}
}
