package store

import (
	"errors"
	"fmt"
	"io"

	"repro/internal/btree"
	"repro/internal/extsort"
	"repro/internal/filter"
	"repro/internal/model"
	"repro/internal/pager"
	"repro/internal/plist"
	"repro/internal/query"
)

// evalEnv binds one atomic evaluation to its output device and its I/O
// attribution sink. Two configurations exist:
//
//   - the legacy environment (out = the store's own disk, no meter):
//     intermediates and results land next to the data, and callers
//     account I/O with windowed Disk.Stats deltas under serialized
//     evaluation — the pre-snapshot-swap discipline, still used by the
//     distributed Coordinator and by direct store/engine tools;
//   - an arena environment (out = the arena's scratch disk, meter = the
//     arena's): the store disk is only read, every written page goes to
//     query-private scratch, and base-disk reads are charged to the
//     meter — which is what lets any number of evaluations run
//     concurrently with exact per-query accounting.
type evalEnv struct {
	s   *Store
	out *pager.Disk  // destination for spools, sort runs, result lists
	m   *pager.Meter // charged for reads of the store's disk (nil = uncharged)
}

func (s *Store) legacyEnv() *evalEnv { return &evalEnv{s: s, out: s.disk} }

func (s *Store) arenaEnv(a *pager.Arena) *evalEnv {
	return &evalEnv{s: s, out: a.Scratch(), m: a.Meter()}
}

// Eval evaluates an atomic query (Definition 4.1), producing a list of
// the matching entries sorted by reverse-DN key. When the attribute
// index is available and the filter is index-supported (equality,
// presence, integer comparisons, wildcard strings), evaluation uses the
// B+tree (and, for wildcards, the suffix index); otherwise it scans the
// scope's contiguous master range.
//
// Result and intermediate lists are written to the store's own disk;
// callers needing concurrent evaluation use EvalArena instead.
func (s *Store) Eval(q *query.Atomic) (*plist.List, error) {
	return s.legacyEnv().eval(q)
}

// EvalArena is Eval with all written pages placed on the arena's
// private scratch disk and all reads of the store's disk charged to the
// arena's meter. The store's disk is never written, so any number of
// EvalArena calls (on distinct arenas) may run concurrently.
func (s *Store) EvalArena(a *pager.Arena, q *query.Atomic) (*plist.List, error) {
	return s.arenaEnv(a).eval(q)
}

// EvalPath is Eval with the access path chosen by the caller — the
// cost-based planner — instead of the store's own catalog comparison.
// path is one of the Path* constants; "" falls back to the store's
// choice. Every path is exact, so forcing one changes page I/O but
// never the answer: a forced "index" on a shape the index cannot serve
// degrades to the scan, and base scopes always take the point lookup
// (there is nothing to choose for a single entry).
func (s *Store) EvalPath(q *query.Atomic, path string) (*plist.List, error) {
	return s.legacyEnv().evalPath(q, path)
}

// EvalPathArena is EvalPath in an arena environment (see EvalArena).
func (s *Store) EvalPathArena(a *pager.Arena, q *query.Atomic, path string) (*plist.List, error) {
	return s.arenaEnv(a).evalPath(q, path)
}

func (env *evalEnv) evalPath(q *query.Atomic, path string) (*plist.List, error) {
	if q.Scope == query.ScopeBase {
		return env.evalBase(q)
	}
	switch path {
	case PathScan, PathKNNScan:
		return env.evalScan(q)
	case PathKNNIndex:
		if q.Filter.Op == filter.OpKNN {
			if ix := env.s.VectorIndex(q.Filter.Attr); ix != nil {
				return env.knnIndex(q, ix)
			}
		}
		return env.evalScan(q)
	case PathIndex:
		if env.s.attr != nil && q.Filter.Op != filter.OpKNN {
			l, handled, err := env.indexEval(q)
			if err != nil {
				return nil, err
			}
			if handled {
				return l, nil
			}
		}
		return env.evalScan(q)
	default:
		return env.eval(q)
	}
}

func (env *evalEnv) eval(q *query.Atomic) (*plist.List, error) {
	if q.Scope == query.ScopeBase {
		// Base scope names exactly one entry: a DN-index point lookup
		// beats any attribute-index plan. For knn the single entry is the
		// whole candidate set, so candidacy (Filter.Matches) is the
		// entire test.
		return env.evalBase(q)
	}
	if q.Filter.Op == filter.OpKNN {
		return env.evalKNN(q)
	}
	if env.s.attr != nil && !env.s.preferScanMetered(q, env.m) {
		l, handled, err := env.indexEval(q)
		if err != nil {
			return nil, err
		}
		if handled {
			return l, nil
		}
	}
	return env.evalScan(q)
}

func (env *evalEnv) evalBase(q *query.Atomic) (*plist.List, error) {
	s := env.s
	w := plist.NewWriter(env.out)
	v, err := s.dn.GetMetered([]byte(q.Base.Key()), env.m)
	if errors.Is(err, btree.ErrNotFound) {
		return w.Close()
	}
	if err != nil {
		return nil, err
	}
	rr := s.master.MeteredRandomReader(env.m)
	rec, err := env.fetchAt(rr, q.Base.Key(), decodeOffset(v))
	if err != nil {
		return nil, err
	}
	if q.Filter.Matches(s.schema, rec.Entry) {
		if err := w.Append(rec); err != nil {
			return nil, err
		}
	}
	return w.Close()
}

// EvalScan evaluates an atomic query by scanning the scope range,
// ignoring any indexes — the baseline for experiment E15.
func (s *Store) EvalScan(q *query.Atomic) (*plist.List, error) {
	return s.legacyEnv().evalScan(q)
}

// EvalScanArena is EvalScan in an arena environment (see EvalArena).
func (s *Store) EvalScanArena(a *pager.Arena, q *query.Atomic) (*plist.List, error) {
	return s.arenaEnv(a).evalScan(q)
}

func (env *evalEnv) evalScan(q *query.Atomic) (*plist.List, error) {
	if q.Filter.Op == filter.OpKNN && q.Scope != query.ScopeBase {
		// A per-entry scan cannot express top-k; the forced-scan path for
		// knn is the brute-force selection — which keeps EvalScan exact,
		// so it stays usable as the oracle for every access path.
		return env.knnScan(q)
	}
	return env.scanEval(q.Base, q.Scope, func(e *model.Entry) bool {
		return q.Filter.Matches(env.s.schema, e)
	})
}

// EvalLDAP evaluates an LDAP query — one base, one scope, a boolean
// combination of atomic filters — by scanning the scope range. This is
// the paper's baseline language; its single-scan evaluation is exactly
// what deployed servers do.
func (s *Store) EvalLDAP(q *query.LDAP) (*plist.List, error) {
	return s.legacyEnv().evalLDAP(q)
}

// EvalLDAPArena is EvalLDAP in an arena environment (see EvalArena).
func (s *Store) EvalLDAPArena(a *pager.Arena, q *query.LDAP) (*plist.List, error) {
	return s.arenaEnv(a).evalLDAP(q)
}

func (env *evalEnv) evalLDAP(q *query.LDAP) (*plist.List, error) {
	return env.scanEval(q.Base, q.Scope, func(e *model.Entry) bool {
		return q.Filter.Matches(env.s.schema, e)
	})
}

// scopeOK reports whether an entry key already known to lie in the
// subtree range of baseKey satisfies the scope.
func scopeOK(baseKey string, baseDepth int, scope query.Scope, key string) bool {
	switch scope {
	case query.ScopeBase:
		return key == baseKey
	case query.ScopeOne:
		return model.KeyDepth(key)-baseDepth <= 1
	default:
		return true
	}
}

func (env *evalEnv) scanEval(base model.DN, scope query.Scope, match func(*model.Entry) bool) (*plist.List, error) {
	k := base.Key()
	hi := model.SubtreeHigh(k)
	depth := base.Depth()
	w := plist.NewWriter(env.out)

	mi, err := env.mergedScan(k, hi)
	if err != nil {
		return nil, err
	}
	for {
		rec, _, err := mi.Next()
		if err != nil {
			return nil, err
		}
		if rec == nil {
			break
		}
		if !scopeOK(k, depth, scope, rec.Key) {
			continue
		}
		if !match(rec.Entry) {
			continue
		}
		if err := w.Append(rec); err != nil {
			return nil, err
		}
	}
	return w.Close()
}

// indexEval attempts index-supported evaluation. handled reports whether
// the filter shape was supported; if false the caller falls back to a
// scan.
func (env *evalEnv) indexEval(q *query.Atomic) (l *plist.List, handled bool, err error) {
	s := env.s
	attr := q.Filter.Attr
	t, ok := s.schema.AttrType(attr)
	if !ok {
		// Unknown attribute: nothing can match.
		empty, err := plist.Build(env.out, nil)
		return empty, true, err
	}
	kind := model.TypeKind(t)
	if kind == model.KindVector {
		// Embeddings have no composite-key postings (the flat vector
		// index replaces them); every scalar-filter shape over a vector
		// attribute falls back to the scope scan.
		return nil, false, nil
	}

	switch q.Filter.Op {
	case filter.OpPresent:
		lo := attrPrefix(attr)
		return env.collectFetch(q, [][2][]byte{{lo, prefixEnd(lo)}}, false)

	case filter.OpEq:
		if kind == model.KindString && containsStar(q.Filter.Operand) {
			sfx := s.suffix[attr]
			if sfx == nil {
				empty, err := plist.Build(env.out, nil)
				return empty, true, err
			}
			var ranges [][2][]byte
			for _, vi := range sfx.MatchWildcard(q.Filter.Operand) {
				p := valuePrefix(attr, []byte(sfx.Values()[vi]))
				ranges = append(ranges, [2][]byte{p, prefixEnd(p)})
			}
			return env.collectFetch(q, ranges, len(ranges) <= 1)
		}
		v, perr := model.ParseValue(t, q.Filter.Operand)
		if perr != nil {
			// E.g. non-numeric operand on an int attribute: no match.
			empty, err := plist.Build(env.out, nil)
			return empty, true, err
		}
		p := valuePrefix(attr, ordValue(v))
		return env.collectFetch(q, [][2][]byte{{p, prefixEnd(p)}}, true)

	case filter.OpLT, filter.OpLE, filter.OpGT, filter.OpGE:
		if kind != model.KindInt {
			return nil, false, nil // string order comparisons: scan
		}
		v, perr := model.ParseValue(t, q.Filter.Operand)
		if perr != nil {
			empty, err := plist.Build(env.out, nil)
			return empty, true, err
		}
		lo, hi := s.intRange(attr, q.Filter.Op, v.Int())
		return env.collectFetch(q, [][2][]byte{{lo, hi}}, false)

	default:
		return nil, false, nil // approx etc.: scan
	}
}

func containsStar(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] == '*' {
			return true
		}
	}
	return false
}

// intRange maps an integer comparison to a composite-key range.
func (s *Store) intRange(attr string, op filter.Op, v int64) (lo, hi []byte) {
	ap := attrPrefix(attr)
	switch op {
	case filter.OpLT:
		return ap, valuePrefix(attr, ordInt(v))
	case filter.OpLE:
		return ap, prefixEnd(valuePrefix(attr, ordInt(v)))
	case filter.OpGT:
		return prefixEnd(valuePrefix(attr, ordInt(v))), prefixEnd(ap)
	case filter.OpGE:
		return valuePrefix(attr, ordInt(v)), prefixEnd(ap)
	}
	// Unreachable: callers pass only range operators.
	return ap, ap
}

// prefixEnd returns the exclusive upper bound of all composite keys
// extending the given component-terminated prefix: the terminator
// 0x00 0x01 bumped to 0x00 0x02, which no escaped payload byte reaches.
func prefixEnd(prefix []byte) []byte {
	out := append([]byte(nil), prefix...)
	out[len(out)-1] = 0x02
	return out
}

// collectFetch scans the given composite-key ranges, filters hits to the
// query's scope, and materializes the matching entries in reverse-DN key
// order. If ordered is true the single range already yields unique hits
// in key order and entries stream straight out; otherwise hits are
// spooled, externally sorted, and de-duplicated (an entry matching
// several values appears once — lists are sets of entries).
func (env *evalEnv) collectFetch(q *query.Atomic, ranges [][2][]byte, ordered bool) (*plist.List, bool, error) {
	s := env.s
	baseKey := q.Base.Key()
	baseHi := model.SubtreeHigh(baseKey)
	depth := q.Base.Depth()

	if ordered && len(ranges) <= 1 {
		w := plist.NewWriter(env.out)
		rr := s.master.MeteredRandomReader(env.m)
		if len(ranges) == 1 {
			var inner error
			err := s.attr.ScanMetered(ranges[0][0], ranges[0][1], env.m, func(k, v []byte) bool {
				rk := splitRevKey(k)
				if rk < baseKey || rk >= baseHi || !scopeOK(baseKey, depth, q.Scope, rk) {
					return true
				}
				rec, rerr := env.fetchAt(rr, rk, decodeOffset(v))
				if rerr != nil {
					inner = rerr
					return false
				}
				if aerr := w.Append(rec); aerr != nil {
					inner = aerr
					return false
				}
				return true
			})
			if err == nil {
				err = inner
			}
			if err != nil {
				return nil, false, err
			}
		}
		l, err := w.Close()
		return l, true, err
	}

	// General path: spool (key, offset) hits, sort, dedupe, fetch.
	spool := plist.NewWriter(env.out).Unordered()
	for _, r := range ranges {
		var inner error
		err := s.attr.ScanMetered(r[0], r[1], env.m, func(k, v []byte) bool {
			rk := splitRevKey(k)
			if rk < baseKey || rk >= baseHi || !scopeOK(baseKey, depth, q.Scope, rk) {
				return true
			}
			if aerr := spool.Append(&plist.Record{Key: rk, A: decodeOffset(v)}); aerr != nil {
				inner = aerr
				return false
			}
			return true
		})
		if err == nil {
			err = inner
		}
		if err != nil {
			return nil, false, err
		}
	}
	hits, err := spool.Close()
	if err != nil {
		return nil, false, err
	}
	sorted, err := extsort.Sort(env.out, hits.Reader(), extsort.Config{})
	if err != nil {
		return nil, false, err
	}
	if err := hits.Free(); err != nil {
		return nil, false, err
	}
	w := plist.NewWriter(env.out)
	rr := s.master.MeteredRandomReader(env.m)
	rd := sorted.Reader()
	last := ""
	first := true
	for {
		hit, err := rd.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, false, err
		}
		if !first && hit.Key == last {
			continue // entry matched several values
		}
		first, last = false, hit.Key
		rec, err := env.fetchAt(rr, hit.Key, hit.A)
		if err != nil {
			return nil, false, err
		}
		if err := w.Append(rec); err != nil {
			return nil, false, err
		}
	}
	if err := sorted.Free(); err != nil {
		return nil, false, err
	}
	l, err := w.Close()
	return l, true, err
}

// EvalString parses and evaluates an atomic query given in surface
// syntax; a convenience for tools and tests.
func (s *Store) EvalString(text string) (*plist.List, error) {
	q, err := query.Parse(text)
	if err != nil {
		return nil, err
	}
	a, ok := q.(*query.Atomic)
	if !ok {
		return nil, fmt.Errorf("store: %q is not atomic; use the engine for composite queries", text)
	}
	return s.Eval(a)
}
