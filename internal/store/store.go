// Package store binds the data model to the external-memory substrate:
// a disk-resident directory instance with the indexes Section 4.1 of
// "Querying Network Directories" assumes, and the atomic-query
// evaluation that feeds the algebraic operators of internal/engine.
//
// Layout:
//
//   - a master list: every entry, serialized in reverse-DN key order.
//     Because an ancestor's key is a prefix of its descendants', the
//     subtree of any entry is one contiguous byte range of this list —
//     the sub scope is a single sequential scan;
//   - a DN B+tree: reverse key -> master stream offset;
//   - optionally, an attribute B+tree over composite (attr, value,
//     reverse-key) keys, plus in-memory trie and suffix-array indexes
//     over each string attribute's distinct values for wildcard filters.
//
// Atomic queries evaluate to plist lists sorted by reverse-DN key, the
// invariant every downstream operator relies on (Section 4.2).
package store

import (
	"errors"
	"fmt"

	"repro/internal/btree"
	"repro/internal/cowtree"
	"repro/internal/model"
	"repro/internal/pager"
	"repro/internal/plist"
	"repro/internal/strindex"
	"repro/internal/vindex"
)

// Options configures Build.
type Options struct {
	// AttrIndex builds the attribute B+tree and the string indexes.
	// Without it every atomic query is a scope scan.
	AttrIndex bool
	// PoolPages is the buffer-pool capacity for each B+tree (default 64).
	PoolPages int
}

// Store is a disk-resident directory instance.
type Store struct {
	disk   *pager.Disk
	schema *model.Schema
	master *plist.List
	dn     *btree.Tree
	attr   *btree.Tree // nil without AttrIndex
	suffix map[string]*strindex.SuffixIndex
	trie   map[string]*strindex.Trie
	vecs   map[string]*vindex.Index // per vector attribute; nil without AttrIndex
	stats  *catalog                 // nil without AttrIndex
	over   *cowtree.Tree            // COW entry overlay; nil until the first incremental mutation
	count  int
}

// Build writes the instance to disk and constructs the indexes.
func Build(disk *pager.Disk, in *model.Instance, opts Options) (*Store, error) {
	if opts.PoolPages <= 0 {
		opts.PoolPages = 64
	}
	s := &Store{disk: disk, schema: in.Schema()}
	var err error
	if s.dn, err = btree.New(disk, opts.PoolPages); err != nil {
		return nil, err
	}
	if opts.AttrIndex {
		if s.attr, err = btree.New(disk, opts.PoolPages); err != nil {
			return nil, err
		}
		s.suffix = make(map[string]*strindex.SuffixIndex)
		s.trie = make(map[string]*strindex.Trie)
		s.stats = newCatalog()
	}

	w := plist.NewWriter(disk)
	strVals := make(map[string]map[string]bool) // attr -> distinct string values
	vb := make(map[string]*vindex.Builder)      // attr -> vector-index builder
	var entryVecs map[string][][]float32        // per-entry vector values, reused
	for _, e := range in.Entries() {
		off := w.Offset()
		if err := w.Append(plist.FromEntry(e)); err != nil {
			return nil, err
		}
		if err := s.dn.Insert([]byte(e.Key()), offsetValue(off)); err != nil {
			return nil, err
		}
		if s.attr == nil {
			continue
		}
		for k := range entryVecs {
			delete(entryVecs, k)
		}
		for _, av := range e.Pairs() {
			if av.Value.Kind() == model.KindVector {
				// Vectors are indexed by the flat vector index, not the
				// composite-key B+tree (there is no useful total order to
				// range-scan an embedding by).
				t, ok := s.schema.AttrType(av.Attr)
				if !ok {
					continue
				}
				if _, isVec := model.VectorDim(t); !isVec {
					continue
				}
				if entryVecs == nil {
					entryVecs = make(map[string][][]float32)
				}
				entryVecs[av.Attr] = append(entryVecs[av.Attr], av.Value.Vec())
				continue
			}
			ov := ordValue(av.Value)
			if err := s.attr.Insert(compositeKey(av.Attr, ov, e.Key()), offsetValue(off)); err != nil {
				return nil, err
			}
			s.stats.observe(av.Attr, av.Value)
			if av.Value.Kind() == model.KindString {
				set := strVals[av.Attr]
				if set == nil {
					set = make(map[string]bool)
					strVals[av.Attr] = set
				}
				set[av.Value.Str()] = true
			}
		}
		for attr, vecs := range entryVecs {
			b := vb[attr]
			if b == nil {
				t, _ := s.schema.AttrType(attr)
				dim, _ := model.VectorDim(t)
				b = vindex.NewBuilder(disk, attr, dim)
				vb[attr] = b
			}
			if err := b.Add(e.Key(), off, vecs); err != nil {
				return nil, err
			}
		}
	}
	if s.master, err = w.Close(); err != nil {
		return nil, err
	}
	if err := s.dn.Flush(); err != nil {
		return nil, err
	}
	if s.attr != nil {
		if err := s.attr.Flush(); err != nil {
			return nil, err
		}
		s.vecs = make(map[string]*vindex.Index, len(vb))
		for attr, b := range vb {
			ix, err := b.Close()
			if err != nil {
				return nil, err
			}
			s.vecs[attr] = ix
		}
		s.stats.finish(s.master.Size(), s.master.Count())
		for attr, set := range strVals {
			vals := make([]string, 0, len(set))
			for v := range set {
				vals = append(vals, v)
			}
			s.suffix[attr] = strindex.BuildSuffix(vals)
			tr := strindex.NewTrie()
			for _, v := range vals {
				tr.Insert(v)
			}
			s.trie[attr] = tr
		}
	}
	s.count = in.Len()
	return s, nil
}

// Disk returns the underlying device (for I/O statistics and for
// allocating operator intermediates alongside the data).
func (s *Store) Disk() *pager.Disk { return s.disk }

// Schema returns the instance's schema.
func (s *Store) Schema() *model.Schema { return s.schema }

// Count returns the number of entries.
func (s *Store) Count() int { return s.count }

// MasterPages returns the size of the master list in pages — the |I|/B
// of the whole instance.
func (s *Store) MasterPages() int { return s.master.Pages() }

// Indexed reports whether the attribute index was built.
func (s *Store) Indexed() bool { return s.attr != nil }

// VectorIndex returns the flat vector index for attr, or nil when the
// attribute is not vector-typed or the store was built without indexes.
func (s *Store) VectorIndex(attr string) *vindex.Index {
	return s.vecs[model.NormalizeAttr(attr)]
}

// ErrNoEntry is returned by Get for absent DNs.
var ErrNoEntry = errors.New("store: no such entry")

// Get fetches a single entry by DN.
func (s *Store) Get(dn model.DN) (*model.Entry, error) {
	v, err := s.dn.Get([]byte(dn.Key()))
	if errors.Is(err, btree.ErrNotFound) {
		return nil, fmt.Errorf("%w: %s", ErrNoEntry, dn)
	}
	if err != nil {
		return nil, err
	}
	var rec *plist.Record
	if off := decodeOffset(v); off >= 0 {
		rr := s.master.RandomReader()
		if rec, _, err = rr.ReadAt(off); err != nil {
			return nil, err
		}
	} else if rec, err = s.overlayGet(dn.Key(), nil); err != nil {
		return nil, err
	}
	return rec.Entry, nil
}

func (s *Store) masterBytes() int64 { return s.master.Size() }

// seekOffset returns the master stream offset of the first entry whose
// key is >= lo, or (0, false) if none.
func (s *Store) seekOffset(lo string) (int64, bool, error) {
	return s.seekOffsetMetered(lo, nil)
}

// seekOffsetMetered is seekOffset with the DN-index probe charged to the
// per-query meter (nil = uncharged). Overlay locators are skipped: the
// result is the stream offset of the first *master-resident* entry at
// or after lo (overlay entries in between come from the merged scan).
func (s *Store) seekOffsetMetered(lo string, m *pager.Meter) (int64, bool, error) {
	var off int64
	found := false
	err := s.dn.ScanMetered([]byte(lo), nil, m, func(_, v []byte) bool {
		if o := decodeOffset(v); o >= 0 {
			off = o
			found = true
			return false
		}
		return true
	})
	return off, found, err
}
