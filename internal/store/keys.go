package store

import (
	"encoding/binary"

	"repro/internal/model"
)

// Composite index keys have the form
//
//	enc(attr) enc(ordval) revkey
//
// where enc is an order-preserving, prefix-free byte encoding (0x00 is
// escaped as 0x00 0xFF; components terminate with 0x00 0x01) and ordval
// is an order-preserving encoding of the attribute value: big-endian
// sign-flipped for ints, raw bytes for strings, the reverse-DN key for
// DN values. Scanning the B+tree over a composite prefix therefore
// yields hits ordered by reverse-DN key — exactly the order the
// evaluation algorithms need.

func encBytes(dst []byte, b []byte) []byte {
	for _, c := range b {
		if c == 0x00 {
			dst = append(dst, 0x00, 0xff)
		} else {
			dst = append(dst, c)
		}
	}
	return append(dst, 0x00, 0x01)
}

// ordInt encodes an int64 so that byte order equals numeric order.
func ordInt(v int64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(v)^(1<<63))
	return b[:]
}

// ordValue returns the order-preserving raw encoding of a value.
func ordValue(v model.Value) []byte {
	switch v.Kind() {
	case model.KindInt:
		return ordInt(v.Int())
	case model.KindDN:
		return []byte(v.DN().Key())
	default:
		return []byte(v.Str())
	}
}

// attrPrefix returns the composite-key prefix covering every value of
// attr.
func attrPrefix(attr string) []byte {
	return encBytes(nil, []byte(attr))
}

// valuePrefix returns the composite-key prefix covering one (attr,
// value) pair across all entries.
func valuePrefix(attr string, ordVal []byte) []byte {
	k := encBytes(nil, []byte(attr))
	return encBytes(k, ordVal)
}

// compositeKey builds the full index key for one (attr, value) pair of
// the entry with the given reverse-DN key.
func compositeKey(attr string, ordVal []byte, revKey string) []byte {
	k := valuePrefix(attr, ordVal)
	return append(k, revKey...)
}

// splitRevKey extracts the reverse-DN key suffix from a composite key:
// the bytes after the second component terminator.
func splitRevKey(k []byte) string {
	seen := 0
	for i := 0; i+1 < len(k); i++ {
		if k[i] == 0x00 {
			if k[i+1] == 0x01 {
				seen++
				if seen == 2 {
					return string(k[i+2:])
				}
			}
			i++ // skip the escape/terminator second byte
		}
	}
	return ""
}

// offsetValue encodes a master-list stream offset as an index value.
func offsetValue(off int64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(off))
	return b[:]
}

// decodeOffset reverses offsetValue.
func decodeOffset(b []byte) int64 {
	return int64(binary.LittleEndian.Uint64(b))
}
