package store

import (
	"encoding/json"
	"fmt"
	"sort"

	"repro/internal/btree"
	"repro/internal/cowtree"
	"repro/internal/model"
	"repro/internal/pager"
	"repro/internal/plist"
	"repro/internal/strindex"
	"repro/internal/vindex"
)

// Manifest locates the store's structures on a snapshotted disk. The
// in-memory indexes (trie, suffix array, catalog statistics) are not
// serialized: Reopen rebuilds them in one scan of the master list, the
// same pass Build uses.
type Manifest struct {
	Count       int            `json:"count"`
	MasterPages []pager.PageID `json:"masterPages"`
	MasterSize  int64          `json:"masterSize"`
	MasterCount int64          `json:"masterCount"`
	DNRoot      pager.PageID   `json:"dnRoot"`
	DNLen       int            `json:"dnLen"`
	AttrRoot    pager.PageID   `json:"attrRoot,omitempty"` // 0 when unindexed
	AttrLen     int            `json:"attrLen,omitempty"`
	// OverRoot/OverLen locate the COW entry overlay (internal/cowtree)
	// masking the master list; 0 until the first incremental mutation.
	OverRoot  pager.PageID `json:"overRoot,omitempty"`
	OverLen   int          `json:"overLen,omitempty"`
	PoolPages int          `json:"poolPages"`
	// Vecs carries one flat-vector-index manifest per vector-typed
	// attribute (ordered by attribute name); the posting pages travel in
	// the disk image like every other structure.
	Vecs []vindex.Manifest `json:"vecs,omitempty"`
}

// Manifest returns the JSON manifest describing this store's on-disk
// layout. The store's trees must be flushed first (Build leaves them
// flushed; call after any direct manipulation).
func (s *Store) Manifest() ([]byte, error) {
	m := Manifest{
		Count:       s.count,
		MasterPages: s.master.PageIDs(),
		MasterSize:  s.master.Size(),
		MasterCount: s.master.Count(),
		DNRoot:      s.dn.Root(),
		DNLen:       s.dn.Len(),
		PoolPages:   64,
	}
	if s.attr != nil {
		m.AttrRoot = s.attr.Root()
		m.AttrLen = s.attr.Len()
	}
	if s.over != nil && s.over.Root() != 0 {
		m.OverRoot = s.over.Root()
		m.OverLen = s.over.Len()
	}
	attrs := make([]string, 0, len(s.vecs))
	for attr := range s.vecs {
		attrs = append(attrs, attr)
	}
	sort.Strings(attrs)
	for _, attr := range attrs {
		m.Vecs = append(m.Vecs, s.vecs[attr].Manifest())
	}
	return json.Marshal(m)
}

// Reopen attaches a Store to a snapshotted disk using its manifest,
// rebuilding the in-memory indexes from the master list.
func Reopen(disk *pager.Disk, schema *model.Schema, manifest []byte) (*Store, error) {
	var m Manifest
	if err := json.Unmarshal(manifest, &m); err != nil {
		return nil, fmt.Errorf("store: bad manifest: %w", err)
	}
	if m.PoolPages <= 0 {
		m.PoolPages = 64
	}
	s := &Store{
		disk:   disk,
		schema: schema,
		master: plist.Restore(disk, m.MasterPages, m.MasterSize, m.MasterCount),
		dn:     btree.Open(disk, m.PoolPages, m.DNRoot, m.DNLen),
		count:  m.Count,
	}
	if m.OverRoot != 0 {
		s.over = cowtree.Open(cowtree.DiskIO(disk), disk.PageSize(), m.OverRoot, m.OverLen)
	}
	if len(m.Vecs) > 0 {
		s.vecs = make(map[string]*vindex.Index, len(m.Vecs))
		for _, vm := range m.Vecs {
			ix, err := vindex.Restore(disk, vm)
			if err != nil {
				return nil, err
			}
			s.vecs[vm.Attr] = ix
		}
	}
	if m.AttrRoot == 0 {
		return s, nil
	}
	s.attr = btree.Open(disk, m.PoolPages, m.AttrRoot, m.AttrLen)
	s.suffix = make(map[string]*strindex.SuffixIndex)
	s.trie = make(map[string]*strindex.Trie)
	s.stats = newCatalog()

	strVals := make(map[string]map[string]bool)
	// One pass over the live view — the master list merged with the
	// overlay — so a reopened store's statistics match the mutated
	// instance, not the stale master image.
	if err := s.forEachLiveEntry(func(rec *plist.Record) error {
		for _, av := range rec.Entry.Pairs() {
			s.stats.observe(av.Attr, av.Value)
			if av.Value.Kind() == model.KindString {
				set := strVals[av.Attr]
				if set == nil {
					set = make(map[string]bool)
					strVals[av.Attr] = set
				}
				set[av.Value.Str()] = true
			}
		}
		return nil
	}); err != nil {
		return nil, err
	}
	s.stats.finish(s.master.Size(), s.master.Count())
	for attr, set := range strVals {
		vals := make([]string, 0, len(set))
		for v := range set {
			vals = append(vals, v)
		}
		s.suffix[attr] = strindex.BuildSuffix(vals)
		tr := strindex.NewTrie()
		for _, v := range vals {
			tr.Insert(v)
		}
		s.trie[attr] = tr
	}
	return s, nil
}
