package store

import (
	"math"
	"sort"

	"repro/internal/model"
	"repro/internal/pager"
	"repro/internal/plist"
	"repro/internal/query"
	"repro/internal/vindex"
)

// evalKNN evaluates a knn(attr, vec, k) atomic filter under a one or
// sub scope: the k entries of the scoped candidate set nearest to the
// query vector (squared L2, ties by reverse-DN key), emitted as a
// reverse-DN-key-sorted list like every other atomic result. Two access
// paths exist, chosen by scope selectivity, both exact: the flat vector
// index (read only the posting pages overlapping the scope's contiguous
// key range, then fetch the k winners from the master list) and a
// brute-force scan of the scope's master range. The paths share the
// distance function and the tie-break, so their answers are
// byte-identical — knnScan is the oracle the index path is tested
// against.
func (env *evalEnv) evalKNN(q *query.Atomic) (*plist.List, error) {
	ix := env.s.VectorIndex(q.Filter.Attr)
	if ix == nil || env.s.preferKNNScanMetered(q, ix, env.m) {
		return env.knnScan(q)
	}
	return env.knnIndex(q, ix)
}

// knnIndex is the index-backed path: a fence-guided scan of the posting
// range [baseKey, SubtreeHigh(baseKey)), then k master fetches.
func (env *evalEnv) knnIndex(q *query.Atomic, ix *vindex.Index) (*plist.List, error) {
	baseKey := q.Base.Key()
	hi := model.SubtreeHigh(baseKey)
	depth := q.Base.Depth()
	var accept func(string) bool
	if q.Scope == query.ScopeOne {
		accept = func(k string) bool { return scopeOK(baseKey, depth, q.Scope, k) }
	}
	nbrs, err := ix.Search(baseKey, hi, accept, q.Filter.Vec, q.Filter.K, env.m)
	if err != nil {
		return nil, err
	}
	return env.fetchNeighbors(nbrs)
}

// knnScan is the brute-force path: scan the scope's master range,
// stream candidates through a bounded top-k collector, then fetch the
// winners again in key order. Memory stays O(k); the winner re-fetch
// costs at most k extra page reads.
func (env *evalEnv) knnScan(q *query.Atomic) (*plist.List, error) {
	baseKey := q.Base.Key()
	hi := model.SubtreeHigh(baseKey)
	depth := q.Base.Depth()

	mi, err := env.mergedScanOff(baseKey, hi)
	if err != nil {
		return nil, err
	}
	top := vindex.NewCollector(q.Filter.K)
	for {
		rec, recOff, err := mi.Next()
		if err != nil {
			return nil, err
		}
		if rec == nil {
			break
		}
		if !scopeOK(baseKey, depth, q.Scope, rec.Key) {
			continue
		}
		dist, ok := knnEntryDist(rec.Entry, q.Filter.Attr, q.Filter.Vec)
		if !ok {
			continue
		}
		top.Offer(vindex.Neighbor{Key: rec.Key, Off: recOff, Dist: dist})
	}
	return env.fetchNeighbors(top.Sorted())
}

// fetchNeighbors materializes the winners as a key-sorted entry list.
func (env *evalEnv) fetchNeighbors(nbrs []vindex.Neighbor) (*plist.List, error) {
	sort.Slice(nbrs, func(i, j int) bool { return nbrs[i].Key < nbrs[j].Key })
	w := plist.NewWriter(env.out)
	rr := env.s.master.MeteredRandomReader(env.m)
	for _, n := range nbrs {
		rec, err := env.fetchAt(rr, n.Key, n.Off)
		if err != nil {
			return nil, err
		}
		if err := w.Append(rec); err != nil {
			return nil, err
		}
	}
	return w.Close()
}

// knnEntryDist returns the entry's distance to the query vector: the
// minimum squared L2 over its values of attr whose dimension matches.
// ok is false when the entry is not a candidate (no such value).
func knnEntryDist(e *model.Entry, attr string, qv []float32) (float64, bool) {
	best := math.Inf(1)
	found := false
	for _, v := range e.Values(attr) {
		if v.Kind() != model.KindVector || len(v.Vec()) != len(qv) {
			continue
		}
		if d := vindex.SquaredL2(v.Vec(), qv); d < best || !found {
			best = d
			found = true
		}
	}
	return best, found
}

// preferKNNScanMetered decides whether the brute-force scan is expected
// to beat the vector index for this scope: the index reads the scope's
// posting-range bytes plus ~k random master fetches, the scan reads the
// scope's whole master extent. Selective scopes (small subtrees of a
// large instance) strongly favor the index; a scope covering most of
// the instance makes the contiguous scan competitive. The DN-index
// probes behind the estimates are charged to the per-query meter.
func (s *Store) preferKNNScanMetered(q *query.Atomic, ix *vindex.Index, m *pager.Meter) bool {
	scan, err := s.scanBytesMetered(q, m)
	if err != nil || scan == 0 {
		return false
	}
	return s.knnIndexCostBytes(q, ix) > scan
}

// knnIndexCostBytes is the catalog's byte-cost model for the
// vector-index path, shared by preferKNNScan and AccessPaths: the
// scope's posting-range bytes plus ~k random master fetches.
func (s *Store) knnIndexCostBytes(q *query.Atomic, ix *vindex.Index) int64 {
	lo := q.Base.Key()
	vecBytes := ix.RangeBytes(lo, model.SubtreeHigh(lo))
	return vecBytes + 2*int64(q.Filter.K)*s.AvgEntryBytes()
}
