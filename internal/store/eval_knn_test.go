package store

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/model"
	"repro/internal/pager"
	"repro/internal/plist"
	"repro/internal/query"
	"repro/internal/workload"
)

const knnDim = 6

// knnInstance is a clustered-embedding forest for knn tests.
func knnInstance(n int, seed int64) *model.Instance {
	return workload.RandomForest(workload.ForestConfig{N: n, Seed: seed, VecDim: knnDim})
}

// knnQuery renders a knn atomic query string.
func knnQuery(base string, scope string, vec []float32, k int) string {
	return fmt.Sprintf("(%s ? %s ? knn(emb,%s,%d))", base, scope, model.FormatVector(vec), k)
}

// drainRecords drains a result list and sanity-checks the sort invariant.
func drainRecords(t *testing.T, l *plist.List) []*plist.Record {
	t.Helper()
	recs, err := plist.Drain(l)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(recs); i++ {
		if recs[i-1].Key >= recs[i].Key {
			t.Fatal("knn result not strictly sorted by reverse-DN key")
		}
	}
	return recs
}

// sameRecords requires two result lists to agree record for record —
// the byte-identity contract between the index and scan paths.
func sameRecords(t *testing.T, label string, a, b []*plist.Record) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: %d vs %d results", label, len(a), len(b))
	}
	for i := range a {
		if a[i].Key != b[i].Key {
			t.Fatalf("%s: result %d key %q vs %q", label, i, a[i].Key, b[i].Key)
		}
		if a[i].Entry == nil || b[i].Entry == nil || !a[i].Entry.Equal(b[i].Entry) {
			t.Fatalf("%s: result %d entries differ at key %q", label, i, a[i].Key)
		}
	}
}

// TestKNNIndexByteIdenticalToScan is the tentpole's correctness pin:
// across scope shapes, k values and tie-heavy data, the index-backed
// path (Eval) and the brute-force oracle (EvalScan) return identical
// result lists.
func TestKNNIndexByteIdenticalToScan(t *testing.T) {
	in := knnInstance(300, 21)
	d := pager.NewDisk(1024)
	st, err := Build(d, in, Options{AttrIndex: true})
	if err != nil {
		t.Fatal(err)
	}
	if st.VectorIndex("emb") == nil {
		t.Fatal("vector index not built")
	}

	// Bases at several depths, plus a miss.
	var deep, deeper string
	for _, e := range in.Entries() {
		switch e.DN().Depth() {
		case 2:
			if deep == "" {
				deep = e.DN().String()
			}
		case 3:
			if deeper == "" {
				deeper = e.DN().String()
			}
		}
	}
	if deep == "" || deeper == "" {
		t.Fatal("forest too shallow for the test")
	}
	root := in.Entries()[0].DN().String()

	r := rand.New(rand.NewSource(22))
	randVec := func() []float32 {
		v := make([]float32, knnDim)
		for i := range v {
			v[i] = float32(r.NormFloat64())
		}
		return v
	}
	// An exact entry vector forces a zero-distance hit; a constant
	// vector makes many near-ties under clustered data.
	exact, _ := in.Entries()[len(in.Entries())/2].First("emb")
	vectors := [][]float32{randVec(), randVec(), exact.Vec(), make([]float32, knnDim)}

	cases := []struct{ base, scope string }{
		{"", "sub"}, // whole instance
		{root, "sub"},
		{deep, "sub"},
		{deeper, "sub"},
		{root, "one"},
		{deep, "one"},
		{deep, "base"},
		{"n=absent", "sub"}, // empty scope
	}
	sawIndexPath := false
	for _, c := range cases {
		for _, k := range []int{1, 3, 25, 1000} {
			for vi, vec := range vectors {
				text := knnQuery(c.base, c.scope, vec, k)
				q := query.MustParse(text).(*query.Atomic)
				li, err := st.Eval(q)
				if err != nil {
					t.Fatalf("%s: %v", text, err)
				}
				ls, err := st.EvalScan(q)
				if err != nil {
					t.Fatalf("%s: %v", text, err)
				}
				label := fmt.Sprintf("base=%q scope=%s k=%d vec=%d", c.base, c.scope, k, vi)
				sameRecords(t, label, drainRecords(t, li), drainRecords(t, ls))
				if st.ExplainAtomic(q).Path == "knn-index" {
					sawIndexPath = true
				}
			}
		}
	}
	if !sawIndexPath {
		t.Error("no case exercised the knn-index path; the identity test is vacuous")
	}
}

// TestKNNTieBreak pins the tie order on exactly-equal distances: ties
// resolve by reverse-DN key ascending, on both paths.
func TestKNNTieBreak(t *testing.T) {
	s := workload.ForestVecSchema(2)
	in := model.NewInstance(s)
	add := func(dn string, vec []float32) {
		e, err := model.NewEntryFromDN(s, model.MustParseDN(dn))
		if err != nil {
			t.Fatal(err)
		}
		e.AddClass("node")
		e.Add("emb", model.VectorValue(vec))
		in.MustAdd(e)
	}
	add("n=root", []float32{9, 9})
	// Five children all at distance 1 from the origin.
	for i := 0; i < 5; i++ {
		add(fmt.Sprintf("n=c%d, n=root", i), []float32{1, 0})
	}
	d := pager.NewDisk(1024)
	st, err := Build(d, in, Options{AttrIndex: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{1, 2, 3, 5, 9} {
		q := query.MustParse(knnQuery("n=root", "sub", []float32{0, 0}, k)).(*query.Atomic)
		li, err := st.Eval(q)
		if err != nil {
			t.Fatal(err)
		}
		ls, err := st.EvalScan(q)
		if err != nil {
			t.Fatal(err)
		}
		ri, rs := drainRecords(t, li), drainRecords(t, ls)
		sameRecords(t, fmt.Sprintf("k=%d", k), ri, rs)
		// The k tied winners must be the k smallest keys among the
		// distance-1 children, i.e. c0..c(k-1), plus root last at k>5.
		wantTies := k
		if wantTies > 5 {
			wantTies = 5
		}
		for i := 0; i < wantTies; i++ {
			wantKey := model.MustParseDN(fmt.Sprintf("n=c%d, n=root", i)).Key()
			found := false
			for _, rec := range ri {
				if rec.Key == wantKey {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("k=%d: tie-break dropped c%d: got %d recs", k, i, len(ri))
			}
		}
	}
}

// TestKNNExplainPaths checks the planner-visible access-path choice: a
// selective deep subtree reports knn-index, and estimates carry k.
func TestKNNExplainPaths(t *testing.T) {
	in := knnInstance(400, 31)
	d := pager.NewDisk(1024)
	st, err := Build(d, in, Options{AttrIndex: true})
	if err != nil {
		t.Fatal(err)
	}
	// The index wins where the subtree's master extent clearly exceeds
	// its posting extent: pick the most populous top-level subtree.
	counts := map[string]int{}
	for _, e := range in.Entries() {
		dn := e.DN()
		counts[dn[len(dn)-1].String()]++
	}
	var deep string
	best := 0
	for base, n := range counts {
		if n > best {
			deep, best = base, n
		}
	}
	if best < 20 {
		t.Fatalf("largest top-level subtree has only %d entries", best)
	}
	vec := make([]float32, knnDim)
	q := query.MustParse(knnQuery(deep, "sub", vec, 2)).(*query.Atomic)
	p := st.ExplainAtomic(q)
	if p.Path != "knn-index" {
		t.Errorf("deep subtree path = %q, want knn-index", p.Path)
	}
	if p.EstHits != 2 {
		t.Errorf("EstHits = %d, want k = 2", p.EstHits)
	}
	// Base scope stays a point lookup regardless of the filter.
	qb := query.MustParse(knnQuery(deep, "base", vec, 2)).(*query.Atomic)
	if p := st.ExplainAtomic(qb); p.Path != "base-point" {
		t.Errorf("base scope path = %q, want base-point", p.Path)
	}
	// Without the attribute index there is no vector index: scan.
	st2, err := Build(pager.NewDisk(1024), in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if p := st2.ExplainAtomic(q); p.Path != "knn-scan" {
		t.Errorf("unindexed path = %q, want knn-scan", p.Path)
	}
}

// TestKNNScopedSearchReadsLess pins the E22 effect at the store level:
// answering knn inside a selective subtree must cost less base-disk I/O
// than a whole-instance knn (the post-filtering strawman reads the full
// posting list no matter the scope).
func TestKNNScopedSearchReadsLess(t *testing.T) {
	in := knnInstance(600, 41)
	d := pager.NewDisk(1024)
	st, err := Build(d, in, Options{AttrIndex: true})
	if err != nil {
		t.Fatal(err)
	}
	var deep string
	for _, e := range in.Entries() {
		if e.DN().Depth() >= 3 {
			deep = e.DN().String()
			break
		}
	}
	if deep == "" {
		t.Fatal("no deep entry")
	}
	vec := make([]float32, knnDim)
	reads := func(text string) int64 {
		a := pager.NewArena(d)
		q := query.MustParse(text).(*query.Atomic)
		l, err := st.EvalArena(a, q)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := plist.Drain(l); err != nil {
			t.Fatal(err)
		}
		return a.Meter().Stats().Reads
	}
	sub := reads(knnQuery(deep, "sub", vec, 3))
	global := reads(knnQuery("", "sub", vec, 3))
	if sub == 0 {
		t.Fatal("scoped knn reported zero metered reads")
	}
	if sub >= global {
		t.Errorf("scoped knn read %d pages, global knn %d — scope not exploited", sub, global)
	}
}
