// Package tops implements the dial-by-name lookup of Example 2.2 of
// "Querying Network Directories": a calling application supplies the
// callee's logical name plus its own context (time of day, day of week,
// media), and receives the call appearances of the highest-priority
// query handling profile (QHP) that matches — giving subscribers
// location- and device-independent reachability with privacy control.
package tops

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/model"
)

// Call is the caller-supplied context matched against QHPs.
type Call struct {
	// CalleeUID is the logical name being dialed.
	CalleeUID string
	// Time is HHMM (e.g. 1430), matched against startTime/endTime.
	Time int64
	// DayOfWeek is 1..7, matched against daysOfWeek.
	DayOfWeek int64
	// CallerGroup, if non-empty, must equal the QHP's callerGroup when
	// the QHP specifies one (the access-control knob of Section 2.2).
	CallerGroup string
	// Media, if non-empty, must equal the QHP's mediaType when
	// specified.
	Media string
}

// Route is the directory's answer: the matched QHP and its call
// appearances, ordered by ascending priority value (most preferred
// first).
type Route struct {
	Subscriber  *model.Entry
	QHP         *model.Entry
	Appearances []*model.Entry
}

// Errors returned by Lookup.
var (
	ErrNoSubscriber = errors.New("tops: no such subscriber")
	ErrNoQHP        = errors.New("tops: no query handling profile matches")
)

// Lookup resolves one call against the subscriber directory rooted at
// base (e.g. "ou=userProfiles, dc=research, dc=att, dc=com").
func Lookup(dir *core.Directory, base string, call Call) (*Route, error) {
	subs, err := dir.Search(fmt.Sprintf("(%s ? one ? uid=%s)", base, call.CalleeUID))
	if err != nil {
		return nil, err
	}
	var sub *model.Entry
	for _, e := range subs.Entries {
		if e.HasClass("TOPSSubscriber") {
			sub = e
			break
		}
	}
	if sub == nil {
		return nil, fmt.Errorf("%w: %s", ErrNoSubscriber, call.CalleeUID)
	}

	// The subscriber's prioritized policies are the QHP children of the
	// subscriber entry (Figure 11).
	qhps, err := dir.Search(fmt.Sprintf("(%s ? one ? objectClass=QHP)", sub.DN()))
	if err != nil {
		return nil, err
	}
	var best *model.Entry
	bestPr := int64(1<<62 - 1)
	for _, q := range qhps.Entries {
		if !qhpMatches(q, call) {
			continue
		}
		pr := int64(1<<62 - 1)
		if v, ok := q.First("priority"); ok {
			pr = v.Int()
		}
		if pr < bestPr {
			best, bestPr = q, pr
		}
	}
	if best == nil {
		return nil, fmt.Errorf("%w: %s", ErrNoQHP, call.CalleeUID)
	}

	cas, err := dir.Search(fmt.Sprintf("(%s ? one ? objectClass=callAppearance)", best.DN()))
	if err != nil {
		return nil, err
	}
	apps := append([]*model.Entry(nil), cas.Entries...)
	sort.SliceStable(apps, func(i, j int) bool {
		pi, pj := int64(1<<62-1), int64(1<<62-1)
		if v, ok := apps[i].First("priority"); ok {
			pi = v.Int()
		}
		if v, ok := apps[j].First("priority"); ok {
			pj = v.Int()
		}
		return pi < pj
	})
	return &Route{Subscriber: sub, QHP: best, Appearances: apps}, nil
}

// qhpMatches applies the heterogeneous QHP semantics of Section 3.5:
// a QHP constrains only the attributes it specifies — some specify
// startTime/endTime, some daysOfWeek, some neither.
func qhpMatches(q *model.Entry, call Call) bool {
	if st, ok := q.First("startTime"); ok && call.Time < st.Int() {
		return false
	}
	if et, ok := q.First("endTime"); ok && call.Time > et.Int() {
		return false
	}
	if days := q.Values("daysOfWeek"); len(days) > 0 {
		ok := false
		for _, d := range days {
			if d.Int() == call.DayOfWeek {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	if cg, ok := q.First("callerGroup"); ok && call.CallerGroup != cg.Str() {
		return false
	}
	if mt, ok := q.First("mediaType"); ok && call.Media != "" && call.Media != mt.Str() {
		return false
	}
	return true
}
