package tops

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/workload"
)

const base = "ou=userProfiles, dc=research, dc=att, dc=com"

func paperDir(t *testing.T) *core.Directory {
	t.Helper()
	dir, err := core.Open(workload.PaperInstance(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestWeekendCallGoesToVoiceMail(t *testing.T) {
	// Figure 11: on a weekend (day 6/7) Jagadish's weekend QHP (priority
	// 1) wins, whose only appearance is voice mail.
	dir := paperDir(t)
	r, err := Lookup(dir, base, Call{CalleeUID: "jag", Time: 1100, DayOfWeek: 6})
	if err != nil {
		t.Fatal(err)
	}
	if r.QHP.DN().RDN().String() != "QHPName=weekend" {
		t.Fatalf("QHP = %s", r.QHP.DN())
	}
	if len(r.Appearances) != 1 {
		t.Fatalf("appearances = %d", len(r.Appearances))
	}
	d, _ := r.Appearances[0].First("description")
	if d.Str() != "voice mail" {
		t.Errorf("appearance = %s", r.Appearances[0].DN())
	}
}

func TestWorkingHoursCallOfficeFirst(t *testing.T) {
	// On a weekday within 0830–1730 the working-hours QHP matches (the
	// weekend QHP does not: wrong day), and the office phone has higher
	// priority than the secretary.
	dir := paperDir(t)
	r, err := Lookup(dir, base, Call{CalleeUID: "jag", Time: 1000, DayOfWeek: 2})
	if err != nil {
		t.Fatal(err)
	}
	if r.QHP.DN().RDN().String() != "QHPName=workinghours" {
		t.Fatalf("QHP = %s", r.QHP.DN())
	}
	if len(r.Appearances) != 2 {
		t.Fatalf("appearances = %d", len(r.Appearances))
	}
	first, _ := r.Appearances[0].First("CANumber")
	if first.Str() != "9733608750" {
		t.Errorf("first appearance = %s (want office phone)", first.Str())
	}
	second, _ := r.Appearances[1].First("description")
	if second.Str() != "secretary" {
		t.Errorf("second appearance = %s", r.Appearances[1].DN())
	}
}

func TestOutsideAllQHPs(t *testing.T) {
	// A weekday at 0300: working hours exclude it, weekend excludes the
	// day — no QHP matches.
	dir := paperDir(t)
	_, err := Lookup(dir, base, Call{CalleeUID: "jag", Time: 300, DayOfWeek: 3})
	if !errors.Is(err, ErrNoQHP) {
		t.Fatalf("err = %v, want ErrNoQHP", err)
	}
}

func TestUnknownSubscriber(t *testing.T) {
	dir := paperDir(t)
	_, err := Lookup(dir, base, Call{CalleeUID: "nobody"})
	if !errors.Is(err, ErrNoSubscriber) {
		t.Fatalf("err = %v", err)
	}
}

func TestSyntheticRoutingAlwaysHighestPriority(t *testing.T) {
	in := workload.GenTOPS(workload.TOPSConfig{Subscribers: 40, Seed: 11})
	dir, err := core.Open(in, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	routed := 0
	for s := 0; s < 40; s++ {
		uid := "sub000" + string(rune('0'+s%10))
		if s >= 10 {
			uid = ""
		}
		if uid == "" {
			continue
		}
		r, err := Lookup(dir, base, Call{CalleeUID: uid, Time: 900, DayOfWeek: 3})
		if errors.Is(err, ErrNoQHP) {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		routed++
		// No other matching QHP of the subscriber may have a strictly
		// smaller priority value.
		best, _ := r.QHP.First("priority")
		qs, err := dir.Search("(" + r.Subscriber.DN().String() + " ? one ? objectClass=QHP)")
		if err != nil {
			t.Fatal(err)
		}
		for _, q := range qs.Entries {
			pr, ok := q.First("priority")
			if !ok || pr.Int() >= best.Int() {
				continue
			}
			if qhpMatches(q, Call{CalleeUID: uid, Time: 900, DayOfWeek: 3}) {
				t.Fatalf("higher-priority QHP %s skipped", q.DN())
			}
		}
		// Appearances sorted by priority.
		last := int64(-1)
		for _, a := range r.Appearances {
			pr, _ := a.First("priority")
			if pr.Int() < last {
				t.Fatal("appearances out of priority order")
			}
			last = pr.Int()
		}
	}
	if routed == 0 {
		t.Skip("no routable synthetic subscribers for this seed")
	}
}

func TestCallerGroupPrivacy(t *testing.T) {
	// A QHP restricted to callerGroup=family must not match other
	// callers; control over who can reach you (Section 2.2).
	b := core.NewBuilder(workload.PaperInstance().Schema().Clone())
	b.MustAdd("dc=com", "dcObject")
	b.MustAdd("ou=u, dc=com", "organizationalUnit")
	if err := b.AddEntry("uid=alice, ou=u, dc=com",
		[]string{"TOPSSubscriber", "inetOrgPerson"}, [2]string{"surName", "a"}); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEntry("QHPName=private, uid=alice, ou=u, dc=com", []string{"QHP"},
		[2]string{"priority", "1"}, [2]string{"callerGroup", "family"}); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEntry("QHPName=public, uid=alice, ou=u, dc=com", []string{"QHP"},
		[2]string{"priority", "2"}); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEntry("CANumber=111, QHPName=private, uid=alice, ou=u, dc=com",
		[]string{"callAppearance"}, [2]string{"priority", "1"}); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEntry("CANumber=222, QHPName=public, uid=alice, ou=u, dc=com",
		[]string{"callAppearance"}, [2]string{"priority", "1"}); err != nil {
		t.Fatal(err)
	}
	dir, err := b.Build(core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	r, err := Lookup(dir, "ou=u, dc=com", Call{CalleeUID: "alice", CallerGroup: "family"})
	if err != nil {
		t.Fatal(err)
	}
	if r.QHP.DN().RDN().String() != "QHPName=private" {
		t.Errorf("family caller got %s", r.QHP.DN())
	}
	r, err = Lookup(dir, "ou=u, dc=com", Call{CalleeUID: "alice", CallerGroup: "stranger"})
	if err != nil {
		t.Fatal(err)
	}
	if r.QHP.DN().RDN().String() != "QHPName=public" {
		t.Errorf("stranger got %s", r.QHP.DN())
	}
}
