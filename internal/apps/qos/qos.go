// Package qos implements the Quality-of-Service enforcement lookup of
// Example 2.1 of "Querying Network Directories": a policy enforcement
// entity (host, router, firewall, proxy) presents a packet profile and
// the current time, and receives the actions of the matching policies
// such that (a) no higher-priority policy applies to the packet, and
// (b) the selected policies have no same-priority exceptions that apply.
//
// The candidate sets are retrieved with directory queries over the
// Figure 12 schema; profile/period matching and the priority/exception
// conflict-resolution of Chaudhury et al. [11] are applied app-side.
package qos

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/filter"
	"repro/internal/model"
)

// Packet is the profile an enforcement entity presents: the packet's
// addressing 5-tuple plus the current time.
type Packet struct {
	SourceAddress      string
	DestinationAddress string
	SourcePort         int64
	DestinationPort    int64
	Protocol           int64
	// Time is yyyymmddhhmmss, the format of PVStartTime/PVEndTime.
	Time int64
	// DayOfWeek is 1..7, matched against PVDayOfWeek.
	DayOfWeek int64
}

// Decision is the enforcement answer: the selected policies and the
// distinct actions they specify.
type Decision struct {
	Policies []*model.Entry
	Actions  []*model.Entry
	// Conflict is true when the selected policies specify more than one
	// distinct action — the "policy conflict" of Section 2.1 that should
	// have been resolved before populating the directory.
	Conflict bool
}

// Match answers one enforcement query against the policies of the given
// administrative domain (a DN such as "dc=dom0, dc=att, dc=com").
func Match(dir *core.Directory, domain string, p Packet) (*Decision, error) {
	// Candidate sets, one atomic query each (Section 2.1: policies are
	// grouped by administrative domain).
	policies, err := dir.Search(fmt.Sprintf("(%s ? sub ? objectClass=SLAPolicyRules)", domain))
	if err != nil {
		return nil, err
	}
	profiles, err := dir.Search(fmt.Sprintf("(%s ? sub ? objectClass=trafficProfile)", domain))
	if err != nil {
		return nil, err
	}
	periods, err := dir.Search(fmt.Sprintf("(%s ? sub ? objectClass=policyValidityPeriod)", domain))
	if err != nil {
		return nil, err
	}
	actions, err := dir.Search(fmt.Sprintf("(%s ? sub ? objectClass=SLADSAction)", domain))
	if err != nil {
		return nil, err
	}

	matchingTP := map[string]bool{}
	for _, tp := range profiles.Entries {
		if profileMatches(tp, p) {
			matchingTP[tp.Key()] = true
		}
	}
	matchingPVP := map[string]bool{}
	for _, pvp := range periods.Entries {
		if periodCovers(pvp, p) {
			matchingPVP[pvp.Key()] = true
		}
	}
	byKey := map[string]*model.Entry{}
	for _, pol := range policies.Entries {
		byKey[pol.Key()] = pol
	}

	applies := func(pol *model.Entry) bool {
		// A policy applies if some referenced profile matches the packet
		// (the dso policy's two SLATPRefs are alternatives, Example 3.1)
		// and, when it names validity periods, some period covers now.
		tpOK := false
		for _, ref := range pol.Values("SLATPRef") {
			if ref.Kind() == model.KindDN && matchingTP[ref.DN().Key()] {
				tpOK = true
				break
			}
		}
		if !tpOK {
			return false
		}
		pvpRefs := pol.Values("SLAPVPRef")
		if len(pvpRefs) == 0 {
			return true
		}
		for _, ref := range pvpRefs {
			if ref.Kind() == model.KindDN && matchingPVP[ref.DN().Key()] {
				return true
			}
		}
		return false
	}

	var matching []*model.Entry
	matchingSet := map[string]bool{}
	for _, pol := range policies.Entries {
		if applies(pol) {
			matching = append(matching, pol)
			matchingSet[pol.Key()] = true
		}
	}
	if len(matching) == 0 {
		return &Decision{}, nil
	}

	// (a) Highest priority wins: the smallest SLARulePriority value
	// among the applying policies.
	best := int64(1<<62 - 1)
	for _, pol := range matching {
		if pr, ok := pol.First("SLARulePriority"); ok && pr.Int() < best {
			best = pr.Int()
		}
	}
	var selected []*model.Entry
	for _, pol := range matching {
		pr, ok := pol.First("SLARulePriority")
		if !ok || pr.Int() != best {
			continue
		}
		// (b) Drop the policy if one of its exceptions, of the same
		// priority, also applies to this packet: the exception takes
		// over in the region of overlap.
		excepted := false
		for _, ref := range pol.Values("SLAExceptionRef") {
			if ref.Kind() != model.KindDN {
				continue
			}
			exc, ok := byKey[ref.DN().Key()]
			if !ok || !matchingSet[exc.Key()] {
				continue
			}
			if epr, ok := exc.First("SLARulePriority"); ok && epr.Int() == best {
				excepted = true
				break
			}
		}
		if !excepted {
			selected = append(selected, pol)
		}
	}

	d := &Decision{Policies: selected}
	actByKey := map[string]*model.Entry{}
	for _, a := range actions.Entries {
		actByKey[a.Key()] = a
	}
	seen := map[string]bool{}
	for _, pol := range selected {
		for _, ref := range pol.Values("SLADSActRef") {
			if ref.Kind() != model.KindDN {
				continue
			}
			k := ref.DN().Key()
			if seen[k] {
				continue
			}
			seen[k] = true
			if a, ok := actByKey[k]; ok {
				d.Actions = append(d.Actions, a)
			}
		}
	}
	d.Conflict = len(d.Actions) > 1
	return d, nil
}

// profileMatches tests a packet against one trafficProfile entry: every
// attribute the profile specifies must match (addresses by wildcard,
// ports and protocol exactly).
func profileMatches(tp *model.Entry, p Packet) bool {
	if !wildcardAttr(tp, "SourceAddress", p.SourceAddress) {
		return false
	}
	if !wildcardAttr(tp, "DestinationAddress", p.DestinationAddress) {
		return false
	}
	if !intAttr(tp, "sourcePort", p.SourcePort) {
		return false
	}
	if !intAttr(tp, "destinationPort", p.DestinationPort) {
		return false
	}
	return intAttr(tp, "protocolNumber", p.Protocol)
}

func wildcardAttr(e *model.Entry, attr, got string) bool {
	vals := e.Values(attr)
	if len(vals) == 0 {
		return true // unconstrained
	}
	for _, v := range vals {
		if filter.WildcardMatch(strings.Split(v.Str(), "*"), got) {
			return true
		}
	}
	return false
}

func intAttr(e *model.Entry, attr string, got int64) bool {
	vals := e.Values(attr)
	if len(vals) == 0 {
		return true
	}
	for _, v := range vals {
		if v.Int() == got {
			return true
		}
	}
	return false
}

// periodCovers tests the packet time against one policyValidityPeriod.
func periodCovers(pvp *model.Entry, p Packet) bool {
	if st, ok := pvp.First("PVStartTime"); ok && p.Time < st.Int() {
		return false
	}
	if et, ok := pvp.First("PVEndTime"); ok && p.Time > et.Int() {
		return false
	}
	days := pvp.Values("PVDayOfWeek")
	if len(days) == 0 {
		return true
	}
	for _, d := range days {
		if d.Int() == p.DayOfWeek {
			return true
		}
	}
	return false
}
