package qos

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/filter"
	"repro/internal/workload"
)

func TestWildcardsIntersect(t *testing.T) {
	cases := []struct {
		a, b string
		want bool
	}{
		{"204.178.16.*", "204.178.*.*", true},
		{"204.178.16.*", "207.140.*.*", false},
		{"*", "anything", true},
		{"", "", true},
		{"", "*", true},
		{"a*b", "ab", true},
		{"a*b", "axxb", true},
		{"a*b", "ba", false},
		{"a*c", "*b*", true}, // common string "abc"
		{"abc", "abc", true},
		{"abc", "abd", false},
		{"*x*", "*y*", true}, // common string "xy"
		{"a*", "b*", false},
		{"*a", "*b", false},
	}
	for _, c := range cases {
		if got := WildcardsIntersect(c.a, c.b); got != c.want {
			t.Errorf("WildcardsIntersect(%q, %q) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestQuickWildcardsIntersectSoundAndComplete(t *testing.T) {
	// Property: against an oracle that enumerates candidate common
	// strings (bounded length over a tiny alphabet), the product
	// construction agrees exactly.
	r := rand.New(rand.NewSource(71))
	randPat := func() string {
		n := r.Intn(5)
		var b strings.Builder
		for i := 0; i < n; i++ {
			if r.Intn(3) == 0 {
				b.WriteByte('*')
			} else {
				b.WriteByte(byte('a' + r.Intn(2)))
			}
		}
		return b.String()
	}
	var enumerate func(prefix string, depth int, fn func(string) bool) bool
	enumerate = func(prefix string, depth int, fn func(string) bool) bool {
		if fn(prefix) {
			return true
		}
		if depth == 0 {
			return false
		}
		for _, c := range []byte{'a', 'b'} {
			if enumerate(prefix+string(c), depth-1, fn) {
				return true
			}
		}
		return false
	}
	f := func() bool {
		p1, p2 := randPat(), randPat()
		got := WildcardsIntersect(p1, p2)
		want := enumerate("", 8, func(s string) bool {
			return filter.WildcardMatch(strings.Split(p1, "*"), s) &&
				filter.WildcardMatch(strings.Split(p2, "*"), s)
		})
		// The oracle only enumerates strings up to length 8; any common
		// string of two <=4-symbol patterns fits (each '*' need not
		// produce more than the other pattern's literals).
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestAuditPaperDirectoryClean(t *testing.T) {
	// The paper's Fig 12 fragment resolves its overlaps through the
	// exception mechanism, so the auditor must not flag it.
	dir := paperDir(t)
	conflicts, err := Audit(dir, dom)
	if err != nil {
		t.Fatal(err)
	}
	if len(conflicts) != 0 {
		for _, c := range conflicts {
			t.Errorf("unexpected conflict: %s vs %s (%s)", c.P1.DN().RDN(), c.P2.DN().RDN(), c.Reason)
		}
	}
}

func TestAuditFlagsRealConflict(t *testing.T) {
	// Two same-priority policies over overlapping profiles with
	// different actions and no exception relation.
	b := core.NewBuilder(workload.PaperInstance().Schema().Clone())
	b.MustAdd("dc=com", "dcObject").MustAdd("dc=z, dc=com", "dcObject")
	base := "ou=networkPolicies, dc=z, dc=com"
	b.MustAdd(base, "organizationalUnit")
	mk := func(dn string, cls string, avs ...[2]string) {
		t.Helper()
		if err := b.AddEntry(dn, []string{cls}, avs...); err != nil {
			t.Fatal(err)
		}
	}
	mk("TPName=wide, "+base, "trafficProfile", [2]string{"SourceAddress", "204.178.*.*"})
	mk("TPName=narrow, "+base, "trafficProfile", [2]string{"SourceAddress", "204.178.16.*"})
	mk("TPName=other, "+base, "trafficProfile", [2]string{"SourceAddress", "9.9.9.*"})
	mk("DSActionName=deny, "+base, "SLADSAction", [2]string{"DSPermission", "Deny"})
	mk("DSActionName=permit, "+base, "SLADSAction", [2]string{"DSPermission", "Permit"})
	mk("SLAPolicyName=a, "+base, "SLAPolicyRules",
		[2]string{"SLARulePriority", "2"},
		[2]string{"SLATPRef", "TPName=wide, " + base},
		[2]string{"SLADSActRef", "DSActionName=deny, " + base})
	mk("SLAPolicyName=b, "+base, "SLAPolicyRules",
		[2]string{"SLARulePriority", "2"},
		[2]string{"SLATPRef", "TPName=narrow, " + base},
		[2]string{"SLADSActRef", "DSActionName=permit, " + base})
	mk("SLAPolicyName=c, "+base, "SLAPolicyRules", // disjoint profile: no conflict
		[2]string{"SLARulePriority", "2"},
		[2]string{"SLATPRef", "TPName=other, " + base},
		[2]string{"SLADSActRef", "DSActionName=permit, " + base})
	mk("SLAPolicyName=d, "+base, "SLAPolicyRules", // different priority: no conflict
		[2]string{"SLARulePriority", "9"},
		[2]string{"SLATPRef", "TPName=wide, " + base},
		[2]string{"SLADSActRef", "DSActionName=permit, " + base})
	dir, err := b.Build(core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	conflicts, err := Audit(dir, "dc=z, dc=com")
	if err != nil {
		t.Fatal(err)
	}
	if len(conflicts) != 1 {
		t.Fatalf("conflicts = %d, want exactly a-vs-b", len(conflicts))
	}
	names := conflicts[0].P1.DN().RDN().String() + "/" + conflicts[0].P2.DN().RDN().String()
	if !strings.Contains(names, "SLAPolicyName=a") || !strings.Contains(names, "SLAPolicyName=b") {
		t.Fatalf("flagged %s", names)
	}
}

func TestAuditRespectsExceptionResolution(t *testing.T) {
	// Same as the real conflict, but b is declared an exception of a:
	// the second resolution mechanism of Section 2.1 applies.
	b := core.NewBuilder(workload.PaperInstance().Schema().Clone())
	b.MustAdd("dc=com", "dcObject").MustAdd("dc=w, dc=com", "dcObject")
	base := "ou=networkPolicies, dc=w, dc=com"
	b.MustAdd(base, "organizationalUnit")
	mk := func(dn string, cls string, avs ...[2]string) {
		t.Helper()
		if err := b.AddEntry(dn, []string{cls}, avs...); err != nil {
			t.Fatal(err)
		}
	}
	mk("TPName=wide, "+base, "trafficProfile", [2]string{"SourceAddress", "*"})
	mk("DSActionName=deny, "+base, "SLADSAction", [2]string{"DSPermission", "Deny"})
	mk("DSActionName=permit, "+base, "SLADSAction", [2]string{"DSPermission", "Permit"})
	mk("SLAPolicyName=a, "+base, "SLAPolicyRules",
		[2]string{"SLARulePriority", "2"},
		[2]string{"SLATPRef", "TPName=wide, " + base},
		[2]string{"SLADSActRef", "DSActionName=deny, " + base},
		[2]string{"SLAExceptionRef", "SLAPolicyName=b, " + base})
	mk("SLAPolicyName=b, "+base, "SLAPolicyRules",
		[2]string{"SLARulePriority", "2"},
		[2]string{"SLATPRef", "TPName=wide, " + base},
		[2]string{"SLADSActRef", "DSActionName=permit, " + base})
	dir, err := b.Build(core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	conflicts, err := Audit(dir, "dc=w, dc=com")
	if err != nil {
		t.Fatal(err)
	}
	if len(conflicts) != 0 {
		t.Fatalf("exception-resolved pair flagged: %v", conflicts[0].Reason)
	}
}

func TestAuditSyntheticStaysConsistentWithMatch(t *testing.T) {
	// Soundness against the matcher: if Audit reports no conflicts for a
	// domain, then no Match call may return Conflict=true.
	in := workload.GenQoS(workload.QoSConfig{Domains: 1, PoliciesPerDomain: 25, Seed: 77})
	dir, err := core.Open(in, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	conflicts, err := Audit(dir, "dc=dom0, dc=att, dc=com")
	if err != nil {
		t.Fatal(err)
	}
	if len(conflicts) > 0 {
		t.Skip("seed produces audit findings; soundness check needs a clean domain")
	}
	r := rand.New(rand.NewSource(78))
	for i := 0; i < 60; i++ {
		d, err := Match(dir, "dc=dom0, dc=att, dc=com", Packet{
			SourceAddress:   "204." + string(rune('0'+r.Intn(10))) + ".3.4",
			SourcePort:      int64([]int{21, 22, 25, 80, 443}[r.Intn(5)]),
			DestinationPort: int64(r.Intn(1000)),
			Time:            19980101000000 + int64(r.Intn(300))*1000000,
			DayOfWeek:       int64(1 + r.Intn(7)),
		})
		if err != nil {
			t.Fatal(err)
		}
		if d.Conflict {
			t.Fatalf("Match found a conflict the auditor missed")
		}
	}
}
