package qos

import (
	"testing"

	"repro/internal/core"
	"repro/internal/workload"
)

func paperDir(t *testing.T) *core.Directory {
	t.Helper()
	dir, err := core.Open(workload.PaperInstance(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return dir
}

const dom = "dc=research, dc=att, dc=com"

func TestDsoPolicyDeniesWeekendTraffic(t *testing.T) {
	// Section 2.1 / Example 3.1: data traffic from 204.178.16.* during a
	// 1998 weekend is denied by the dso policy.
	dir := paperDir(t)
	d, err := Match(dir, dom, Packet{
		SourceAddress:      "204.178.16.5",
		DestinationAddress: "10.0.0.1",
		SourcePort:         1234,
		DestinationPort:    8080,
		Time:               19980704120000, // a Saturday in 1998
		DayOfWeek:          6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Policies) != 1 || d.Policies[0].DN().RDN().String() != "SLAPolicyName=dso" {
		t.Fatalf("policies: %v", d.Policies)
	}
	if len(d.Actions) != 1 {
		t.Fatalf("actions: %d", len(d.Actions))
	}
	perm, _ := d.Actions[0].First("DSPermission")
	if perm.Str() != "Deny" {
		t.Errorf("action = %s, want Deny", perm.Str())
	}
	if d.Conflict {
		t.Error("single action must not be a conflict")
	}
}

func TestExceptionOverridesPolicy(t *testing.T) {
	// SMTP traffic from the same range matches both dso and its
	// exception mail (same priority): the exception applies, dso is
	// suppressed, and the traffic gets bestEffort instead of Deny.
	dir := paperDir(t)
	d, err := Match(dir, dom, Packet{
		SourceAddress:   "204.178.16.5",
		DestinationPort: 25,
		Time:            19980704120000,
		DayOfWeek:       6,
	})
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, p := range d.Policies {
		names[p.DN().RDN().String()] = true
	}
	if names["SLAPolicyName=dso"] {
		t.Error("dso must be suppressed by its matching exception")
	}
	if !names["SLAPolicyName=mail"] {
		t.Errorf("mail exception must be selected: %v", names)
	}
	if len(d.Actions) != 1 {
		t.Fatalf("actions: %d", len(d.Actions))
	}
	perm, _ := d.Actions[0].First("DSPermission")
	if perm.Str() != "Permit" {
		t.Errorf("action = %s, want Permit (bestEffort)", perm.Str())
	}
}

func TestTimeOutsideValidity(t *testing.T) {
	// A weekday outside the validity periods: dso does not apply, but
	// the exception policies (no PVP refs: always valid) still do.
	dir := paperDir(t)
	d, err := Match(dir, dom, Packet{
		SourceAddress:   "204.178.16.5",
		DestinationPort: 9999,
		Time:            19980707120000, // Tuesday
		DayOfWeek:       2,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range d.Policies {
		if p.DN().RDN().String() == "SLAPolicyName=dso" {
			t.Error("dso must not apply outside its validity periods")
		}
	}
}

func TestNonMatchingSource(t *testing.T) {
	dir := paperDir(t)
	d, err := Match(dir, dom, Packet{
		SourceAddress: "9.9.9.9",
		Time:          19980704120000,
		DayOfWeek:     6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Policies) != 0 {
		t.Errorf("no profile matches 9.9.9.9, got %d policies", len(d.Policies))
	}
}

func TestPriorityWinsOverLowerPriority(t *testing.T) {
	// Build a tiny domain with two applying policies at different
	// priorities: only the numerically smaller one is selected.
	b := core.NewBuilder(workload.PaperInstance().Schema().Clone())
	for _, dn := range []string{
		"dc=com", "dc=x, dc=com",
	} {
		b.MustAdd(dn, "dcObject")
	}
	b.MustAdd("ou=networkPolicies, dc=x, dc=com", "organizationalUnit")
	base := "ou=networkPolicies, dc=x, dc=com"
	if err := b.AddEntry("TPName=all, "+base, []string{"trafficProfile"},
		[2]string{"SourceAddress", "*"}); err != nil {
		t.Fatal(err)
	}
	for _, a := range [][2]string{{"deny", "Deny"}, {"permit", "Permit"}} {
		if err := b.AddEntry("DSActionName="+a[0]+", "+base, []string{"SLADSAction"},
			[2]string{"DSPermission", a[1]}); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.AddEntry("SLAPolicyName=strict, "+base, []string{"SLAPolicyRules"},
		[2]string{"SLARulePriority", "1"},
		[2]string{"SLATPRef", "TPName=all, " + base},
		[2]string{"SLADSActRef", "DSActionName=deny, " + base}); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEntry("SLAPolicyName=lax, "+base, []string{"SLAPolicyRules"},
		[2]string{"SLARulePriority", "5"},
		[2]string{"SLATPRef", "TPName=all, " + base},
		[2]string{"SLADSActRef", "DSActionName=permit, " + base}); err != nil {
		t.Fatal(err)
	}
	dir, err := b.Build(core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	d, err := Match(dir, "dc=x, dc=com", Packet{SourceAddress: "1.2.3.4"})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Policies) != 1 || d.Policies[0].DN().RDN().String() != "SLAPolicyName=strict" {
		t.Fatalf("selected: %v", d.Policies)
	}
}

func TestConflictDetection(t *testing.T) {
	// Two same-priority applying policies with different actions: the
	// ambiguity the directory population step should have resolved.
	b := core.NewBuilder(workload.PaperInstance().Schema().Clone())
	b.MustAdd("dc=com", "dcObject").MustAdd("dc=y, dc=com", "dcObject")
	base := "ou=networkPolicies, dc=y, dc=com"
	b.MustAdd(base, "organizationalUnit")
	if err := b.AddEntry("TPName=all, "+base, []string{"trafficProfile"},
		[2]string{"SourceAddress", "*"}); err != nil {
		t.Fatal(err)
	}
	for i, perm := range []string{"Deny", "Permit"} {
		if err := b.AddEntry(
			[]string{"DSActionName=a0, ", "DSActionName=a1, "}[i]+base,
			[]string{"SLADSAction"}, [2]string{"DSPermission", perm}); err != nil {
			t.Fatal(err)
		}
		if err := b.AddEntry(
			[]string{"SLAPolicyName=p0, ", "SLAPolicyName=p1, "}[i]+base,
			[]string{"SLAPolicyRules"},
			[2]string{"SLARulePriority", "3"},
			[2]string{"SLATPRef", "TPName=all, " + base},
			[2]string{"SLADSActRef", []string{"DSActionName=a0, ", "DSActionName=a1, "}[i] + base}); err != nil {
			t.Fatal(err)
		}
	}
	dir, err := b.Build(core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	d, err := Match(dir, "dc=y, dc=com", Packet{SourceAddress: "1.1.1.1"})
	if err != nil {
		t.Fatal(err)
	}
	if !d.Conflict || len(d.Actions) != 2 {
		t.Fatalf("conflict not detected: %d actions, conflict=%v", len(d.Actions), d.Conflict)
	}
}

func TestSyntheticQoSMatches(t *testing.T) {
	in := workload.GenQoS(workload.QoSConfig{Domains: 2, PoliciesPerDomain: 30, Seed: 7})
	dir, err := core.Open(in, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	hits := 0
	for i := 0; i < 40; i++ {
		d, err := Match(dir, "dc=dom0, dc=att, dc=com", Packet{
			SourceAddress:   "204.3.7.42",
			SourcePort:      25,
			DestinationPort: 80,
			Time:            19980615120000,
			DayOfWeek:       int64(1 + i%7),
		})
		if err != nil {
			t.Fatal(err)
		}
		hits += len(d.Policies)
		// Selected policies must share the minimum priority.
		var pr int64 = -1
		for _, p := range d.Policies {
			v, _ := p.First("SLARulePriority")
			if pr == -1 {
				pr = v.Int()
			} else if v.Int() != pr {
				t.Fatal("mixed priorities in selection")
			}
		}
	}
	if hits == 0 {
		t.Skip("no synthetic matches for this seed; adjust workload")
	}
}
