package qos

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/model"
)

// Conflict is a pair of policies that can both apply to some packet at
// the same priority while specifying different actions, with neither
// declared an exception of the other — the ambiguity Section 2.1 says
// "must be resolved before populating the directory".
type Conflict struct {
	P1, P2 *model.Entry
	Reason string
}

// Audit scans one administrative domain's policies and reports every
// potential conflict. It over-approximates conservatively: two policies
// are flagged if some pair of their traffic profiles can match a common
// packet, their validity periods can overlap, their priorities are
// equal, their action references differ, and neither references the
// other through SLAExceptionRef.
func Audit(dir *core.Directory, domain string) ([]Conflict, error) {
	policies, err := dir.Search(fmt.Sprintf("(%s ? sub ? objectClass=SLAPolicyRules)", domain))
	if err != nil {
		return nil, err
	}
	profiles, err := dir.Search(fmt.Sprintf("(%s ? sub ? objectClass=trafficProfile)", domain))
	if err != nil {
		return nil, err
	}
	periods, err := dir.Search(fmt.Sprintf("(%s ? sub ? objectClass=policyValidityPeriod)", domain))
	if err != nil {
		return nil, err
	}
	tpByKey := map[string]*model.Entry{}
	for _, tp := range profiles.Entries {
		tpByKey[tp.Key()] = tp
	}
	pvpByKey := map[string]*model.Entry{}
	for _, pvp := range periods.Entries {
		pvpByKey[pvp.Key()] = pvp
	}

	var out []Conflict
	for i, p1 := range policies.Entries {
		for _, p2 := range policies.Entries[i+1:] {
			if reason, ok := conflictsWith(p1, p2, tpByKey, pvpByKey); ok {
				out = append(out, Conflict{P1: p1, P2: p2, Reason: reason})
			}
		}
	}
	return out, nil
}

func conflictsWith(p1, p2 *model.Entry, tps, pvps map[string]*model.Entry) (string, bool) {
	pr1, ok1 := p1.First("SLARulePriority")
	pr2, ok2 := p2.First("SLARulePriority")
	if !ok1 || !ok2 || pr1.Int() != pr2.Int() {
		return "", false // priorities order them (the first resolution mechanism)
	}
	if refersTo(p1, "SLAExceptionRef", p2) || refersTo(p2, "SLAExceptionRef", p1) {
		return "", false // exception relation resolves the overlap
	}
	if sameRefSet(p1, p2, "SLADSActRef") {
		return "", false // identical treatment: no ambiguity
	}
	if !refsOverlap(p1, p2, "SLATPRef", tps, profilesOverlap) {
		return "", false
	}
	if !refsOverlap(p1, p2, "SLAPVPRef", pvps, periodsOverlap) {
		return "", false
	}
	return fmt.Sprintf("equal priority %d, overlapping profiles and periods, different actions", pr1.Int()), true
}

func refersTo(p *model.Entry, attr string, target *model.Entry) bool {
	for _, v := range p.Values(attr) {
		if v.Kind() == model.KindDN && v.DN().Key() == target.Key() {
			return true
		}
	}
	return false
}

func sameRefSet(p1, p2 *model.Entry, attr string) bool {
	set := func(p *model.Entry) map[string]bool {
		out := map[string]bool{}
		for _, v := range p.Values(attr) {
			if v.Kind() == model.KindDN {
				out[v.DN().Key()] = true
			}
		}
		return out
	}
	s1, s2 := set(p1), set(p2)
	if len(s1) != len(s2) {
		return false
	}
	for k := range s1 {
		if !s2[k] {
			return false
		}
	}
	return true
}

// refsOverlap reports whether some pair of referenced entries (one from
// each policy) can apply simultaneously. Policies without any reference
// of the given kind are unconstrained and overlap with everything.
func refsOverlap(p1, p2 *model.Entry, attr string, byKey map[string]*model.Entry,
	overlap func(a, b *model.Entry) bool) bool {
	r1 := resolvedRefs(p1, attr, byKey)
	r2 := resolvedRefs(p2, attr, byKey)
	if len(r1) == 0 || len(r2) == 0 {
		return true
	}
	for _, a := range r1 {
		for _, b := range r2 {
			if overlap(a, b) {
				return true
			}
		}
	}
	return false
}

func resolvedRefs(p *model.Entry, attr string, byKey map[string]*model.Entry) []*model.Entry {
	var out []*model.Entry
	for _, v := range p.Values(attr) {
		if v.Kind() != model.KindDN {
			continue
		}
		if e, ok := byKey[v.DN().Key()]; ok {
			out = append(out, e)
		}
	}
	return out
}

// profilesOverlap reports whether two traffic profiles can match a
// common packet.
func profilesOverlap(a, b *model.Entry) bool {
	for _, attr := range []string{"SourceAddress", "DestinationAddress"} {
		if !patternsOverlap(a.Values(attr), b.Values(attr)) {
			return false
		}
	}
	for _, attr := range []string{"sourcePort", "destinationPort", "protocolNumber"} {
		if !intSetsOverlap(a.Values(attr), b.Values(attr)) {
			return false
		}
	}
	return true
}

func patternsOverlap(as, bs []model.Value) bool {
	if len(as) == 0 || len(bs) == 0 {
		return true // unconstrained
	}
	for _, a := range as {
		for _, b := range bs {
			if WildcardsIntersect(a.Str(), b.Str()) {
				return true
			}
		}
	}
	return false
}

func intSetsOverlap(as, bs []model.Value) bool {
	if len(as) == 0 || len(bs) == 0 {
		return true
	}
	for _, a := range as {
		for _, b := range bs {
			if a.Int() == b.Int() {
				return true
			}
		}
	}
	return false
}

// periodsOverlap reports whether two validity periods can cover a
// common instant.
func periodsOverlap(a, b *model.Entry) bool {
	aStart, aEnd := periodBounds(a)
	bStart, bEnd := periodBounds(b)
	if aStart > bEnd || bStart > aEnd {
		return false
	}
	return intSetsOverlap(a.Values("PVDayOfWeek"), b.Values("PVDayOfWeek"))
}

func periodBounds(e *model.Entry) (start, end int64) {
	start, end = 0, 1<<62
	if v, ok := e.First("PVStartTime"); ok {
		start = v.Int()
	}
	if v, ok := e.First("PVEndTime"); ok {
		end = v.Int()
	}
	return start, end
}

// WildcardsIntersect reports whether two '*' wildcard patterns can both
// match some common string: the standard product construction over the
// two patterns, memoized.
func WildcardsIntersect(p1, p2 string) bool {
	type state struct{ i, j int }
	memo := map[state]int8{} // 0 unknown, 1 true, 2 false
	var rec func(i, j int) bool
	rec = func(i, j int) bool {
		if i == len(p1) && j == len(p2) {
			return true
		}
		s := state{i, j}
		if v := memo[s]; v != 0 {
			return v == 1
		}
		memo[s] = 2
		ok := false
		switch {
		case i < len(p1) && p1[i] == '*':
			// '*' consumes nothing, or one symbol that p2 must also
			// produce (a literal of p2, or p2's own '*').
			ok = rec(i+1, j)
			if !ok && j < len(p2) {
				if p2[j] == '*' {
					ok = rec(i, j+1) || rec(i+1, j+1)
				} else {
					ok = rec(i, j+1)
				}
			}
		case j < len(p2) && p2[j] == '*':
			ok = rec(i, j+1) || (i < len(p1) && rec(i+1, j))
		case i < len(p1) && j < len(p2) && p1[i] == p2[j]:
			ok = rec(i+1, j+1)
		}
		if ok {
			memo[s] = 1
		}
		return ok
	}
	// Fast path: identical patterns always intersect (match themselves
	// with '*' as empty) unless they contain '*' vs literal mismatches,
	// handled by the recursion anyway.
	if p1 == p2 {
		return true
	}
	if !strings.Contains(p1, "*") && !strings.Contains(p2, "*") {
		return p1 == p2
	}
	return rec(0, 0)
}
