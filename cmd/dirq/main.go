// Command dirq loads or generates a network directory and evaluates
// queries written in the surface syntax of "Querying Network
// Directories" (L0–L3), printing the matching entries and the page I/O
// the evaluation performed.
//
// Usage:
//
//	dirq -gen paper -q '(dc=att, dc=com ? sub ? objectClass=trafficProfile)'
//	dirq -ldif dir.ldif -q '(c (dc=com ? sub ? objectClass=TOPSSubscriber) (dc=com ? sub ? objectClass=QHP))'
//	dirq -gen tops -n 100 -ldap '(dc=com ? sub ? (&(objectClass=QHP)(priority<=1)))'
//
// With -server the query is shipped to a running dirserve instance
// over the line protocol instead of evaluating locally; -timeout and
// -retries tune the pooled client's deadline and retry budget:
//
//	dirq -server 127.0.0.1:7001 -timeout 2s -retries 1 -q '(dc=com ? sub ? objectClass=dcObject)'
//
// With -peers the query is evaluated through a federating Coordinator:
// each "dn@addr" pair (pairs separated by ";") registers a zone served
// by a remote dirserve, and atomics under those subtrees are shipped to
// the owning replica. Combined with -explain the evaluation is traced
// end to end — a 128-bit trace ID rides the wire, every replica returns
// its span subtree, and dirq prints ONE merged tree with per-hop
// wire/serve/queue time split and the cross-process page-I/O
// conservation check (local + Σ remote = total):
//
//	dirq -peers 'dc=com@127.0.0.1:7001' -explain -q '(dc=com ? sub ? objectClass=dcObject)'
//
// With -stats DIR observed per-operator statistics persist across runs:
// on boot the newest intact qstats checkpoint in DIR is recovered and
// feeds EXPLAIN's observed-vs-estimated columns; after the run the
// updated store is checkpointed back through the durable envelope.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/apps/qos"
	"repro/internal/core"
	"repro/internal/dirserver"
	"repro/internal/durable"
	"repro/internal/engine"
	"repro/internal/ldif"
	"repro/internal/model"
	"repro/internal/pager"
	"repro/internal/qstats"
	"repro/internal/query"
	"repro/internal/workload"
)

func main() {
	var (
		ldifPath    = flag.String("ldif", "", "load the directory from this LDIF file")
		gen         = flag.String("gen", "", "generate a directory: paper | forest | qos | tops")
		n           = flag.Int("n", 200, "size parameter for generated directories")
		seed        = flag.Int64("seed", 1, "generator seed")
		queryStr    = flag.String("q", "", "L0..L3 query to evaluate")
		ldapStr     = flag.String("ldap", "", "LDAP baseline query to evaluate")
		noIndex     = flag.Bool("noindex", false, "disable attribute indexes (scan-only atomic evaluation)")
		cacheBytes  = flag.Int64("cache", 0, "enable the query-result cache with this byte budget (0 = off)")
		optimize    = flag.Bool("optimize", false, "run the algebraic planner before evaluation")
		adaptive    = flag.Bool("adaptive", false, "run the cost-based adaptive planner: algebraic rewrites plus access-path, join-order, and offload choices priced in estimated pages, calibrated from -stats observations (implies -optimize)")
		interactive = flag.Bool("i", false, "interactive mode: read one query per line from stdin")
		explain     = flag.Bool("explain", false, "print the query plan, then evaluate with tracing on and print the per-operator span tree (wall time, cardinalities, page I/O)")
		audit       = flag.String("audit", "", "audit the QoS policies of this domain DN for conflicts")
		quiet       = flag.Bool("quiet", false, "print only the count and I/O statistics")
		openSnap    = flag.String("open", "", "open a directory snapshot instead of generating/loading")
		saveSnap    = flag.String("save", "", "save the directory as a snapshot to this path")
		server      = flag.String("server", "", "evaluate at this remote dirserve address instead of locally (-gen/-ldif still select the schema)")
		timeout     = flag.Duration("timeout", 10*time.Second, "per-request deadline for -server calls")
		retries     = flag.Int("retries", 2, "transient-failure retries for -server calls")
		workers     = flag.Int("workers", 1, "evaluate independent query subtrees on up to this many goroutines (1 = serial; see DESIGN.md §9)")
		peers       = flag.String("peers", "", `federate through a Coordinator: ";"-separated "dn@addr" zone registrations (-explain traces across the wire)`)
		statsDir    = flag.String("stats", "", "durable query-statistics directory: recover observed profiles on boot (feeds EXPLAIN), checkpoint after the run")
	)
	flag.Parse()
	opts := core.Options{NoAttrIndex: *noIndex, Optimize: *optimize, Adaptive: *adaptive, CacheBytes: *cacheBytes, Engine: engine.Config{Workers: *workers}}

	if *server != "" {
		runRemote(*server, *timeout, *retries, *ldifPath, *gen, *n, *seed, *queryStr, *ldapStr)
		return
	}

	var dir *core.Directory
	if *openSnap != "" {
		f, err := os.Open(*openSnap)
		if err != nil {
			fatal(err)
		}
		dir, err = core.OpenSnapshot(f, opts)
		f.Close()
		if err != nil {
			fatal(err)
		}
	} else {
		in, err := loadInstance(*ldifPath, *gen, *n, *seed)
		if err != nil {
			fatal(err)
		}
		dir, err = core.Open(in, opts)
		if err != nil {
			fatal(err)
		}
	}
	fmt.Printf("directory: %d entries\n", dir.Count())

	// A durable statistics store makes EXPLAIN's observed columns
	// persistent: recover past observations now, checkpoint the grown
	// store when the run completes.
	var qflush func()
	if *statsDir != "" {
		var err error
		if qflush, err = attachStats(dir, *statsDir); err != nil {
			fatal(err)
		}
	}

	if *saveSnap != "" {
		f, err := os.Create(*saveSnap)
		if err != nil {
			fatal(err)
		}
		if err := dir.SaveSnapshot(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("snapshot saved to %s\n", *saveSnap)
		if *queryStr == "" && *ldapStr == "" && *audit == "" && !*interactive {
			return
		}
	}

	if *audit != "" {
		conflicts, err := qos.Audit(dir, *audit)
		if err != nil {
			fatal(err)
		}
		for _, c := range conflicts {
			fmt.Printf("conflict: %s vs %s — %s\n", c.P1.DN().RDN(), c.P2.DN().RDN(), c.Reason)
		}
		fmt.Printf("%d potential conflicts in %s\n", len(conflicts), *audit)
		if *queryStr == "" && *ldapStr == "" {
			return
		}
	}

	if *explain && *queryStr != "" {
		ex, err := dir.ExplainQuery(*queryStr)
		if err != nil {
			fatal(err)
		}
		fmt.Print(ex)
	}

	if *peers != "" {
		if *queryStr == "" {
			fmt.Fprintln(os.Stderr, "dirq: -peers needs -q")
			os.Exit(2)
		}
		runFederated(dir, *peers, *queryStr, *explain, *quiet)
		if qflush != nil {
			qflush()
		}
		return
	}

	switch {
	case *queryStr != "" && *explain:
		runTraced(dir, *queryStr, *quiet)
	case *queryStr != "":
		runQuery(dir, *queryStr, false, *quiet)
	case *ldapStr != "":
		runQuery(dir, *ldapStr, true, *quiet)
	case *interactive:
		repl(dir, *quiet)
	default:
		fmt.Fprintln(os.Stderr, "dirq: provide -q, -ldap, or -i")
		flag.Usage()
		os.Exit(2)
	}
	if *cacheBytes > 0 {
		st := dir.CacheStats()
		fmt.Printf("cache: %d entries (%d/%d bytes), hits %d, misses %d, hit rate %.2f\n",
			st.Entries, st.Bytes, st.MaxBytes, st.Hits, st.Misses, st.HitRate())
	}
	if qflush != nil {
		qflush()
	}
}

// attachStats opens (creating if needed) the durable qstats store at
// path, recovers the newest intact generation into a fresh store,
// attaches it to the directory, and returns the end-of-run checkpoint.
func attachStats(dir *core.Directory, path string) (flush func(), err error) {
	fs, err := pager.DirFS(path)
	if err != nil {
		return nil, err
	}
	ds, err := durable.Open(fs, durable.Options{})
	if err != nil {
		return nil, err
	}
	qs := qstats.New()
	gen, err := qs.Recover(ds)
	if err != nil {
		return nil, fmt.Errorf("recovering query statistics: %w", err)
	}
	if gen > 0 {
		fmt.Printf("qstats: recovered %d folded traces (generation %d)\n", qs.Folded(), gen)
	}
	dir.SetQueryStats(qs)
	return func() {
		if gen, err := qs.Checkpoint(ds); err != nil {
			fmt.Fprintln(os.Stderr, "dirq: qstats checkpoint:", err)
		} else {
			fmt.Printf("qstats: checkpointed generation %d (%d traces folded)\n", gen, qs.Folded())
		}
	}, nil
}

// runFederated evaluates through a Coordinator federating the zones
// registered by -peers. With explain the evaluation is traced across
// the wire and the merged span tree is printed with the cross-process
// I/O conservation check.
func runFederated(dir *core.Directory, peers, text string, explain, quiet bool) {
	var reg dirserver.Registry
	for _, pair := range strings.Split(peers, ";") {
		pair = strings.TrimSpace(pair)
		if pair == "" {
			continue
		}
		i := strings.LastIndex(pair, "@")
		if i < 0 {
			fatal(fmt.Errorf("bad -peers entry %q: want dn@addr", pair))
		}
		dn, err := model.ParseDN(pair[:i])
		if err != nil {
			fatal(fmt.Errorf("bad -peers DN in %q: %w", pair, err))
		}
		reg.Register(dn, strings.TrimSpace(pair[i+1:]))
	}
	coord := dirserver.NewCoordinatorWith(dir, &reg, "", dirserver.CoordinatorConfig{})
	defer coord.Close()

	if !explain {
		entries, err := coord.Search(context.Background(), text)
		if err != nil {
			fatal(err)
		}
		if !quiet {
			for _, e := range entries {
				fmt.Println(e)
				fmt.Println()
			}
		}
		fmt.Printf("%d entries via coordinator\n", len(entries))
		return
	}

	entries, root, err := coord.SearchTraced(context.Background(), text)
	if err != nil {
		fatal(err)
	}
	if !quiet {
		for _, e := range entries {
			fmt.Println(e)
			fmt.Println()
		}
	}
	fmt.Println("distributed execution profile:")
	root.Format(os.Stdout)
	if cerr := root.CheckConservation(); cerr != nil {
		fmt.Printf("I/O conservation: FAILED — %v\n", cerr)
	} else {
		total := root.TreeIO()
		remote := total.Sub(root.IO)
		fmt.Printf("I/O conservation: ok — total %d page accesses = local %d + Σ remote %d (%d hops)\n",
			total.IO(), root.IO.IO(), remote.IO(), len(root.RemoteRoots()))
	}
	fmt.Printf("%d entries\n", len(entries))
}

// runRemote ships one query to a dirserve instance through the pooled
// retrying client. The local instance (default: the paper's) supplies
// only the schema for decoding the wire entries.
func runRemote(addr string, timeout time.Duration, retries int, ldifPath, gen string, n int, seed int64, queryStr, ldapStr string) {
	kind, text := "query", queryStr
	if text == "" {
		kind, text = "ldap", ldapStr
	}
	if text == "" {
		fmt.Fprintln(os.Stderr, "dirq: -server needs -q or -ldap")
		os.Exit(2)
	}
	in, err := loadInstance(ldifPath, gen, n, seed)
	if err != nil {
		fatal(err)
	}
	attempts := retries + 1
	if attempts < 1 {
		attempts = 1
	}
	if retries <= 0 {
		retries = -1 // ClientConfig: negative disables, zero means default
	}
	cl := dirserver.NewClient(in.Schema(), dirserver.ClientConfig{
		RequestTimeout: timeout,
		MaxRetries:     retries,
	})
	defer cl.Close()
	ctx, cancel := context.WithTimeout(context.Background(), time.Duration(attempts)*(timeout+time.Second))
	defer cancel()
	start := time.Now()
	entries, err := cl.Call(ctx, addr, kind, text)
	if err != nil {
		fatal(err)
	}
	for _, e := range entries {
		fmt.Println(e)
		fmt.Println()
	}
	st := cl.Stats()
	fmt.Printf("%d entries from %s in %v (retries: %d)\n", len(entries), addr, time.Since(start).Round(time.Millisecond), st.Retries)
}

// runTraced evaluates with the obs tracer attached and prints the
// annotated span tree: one line per operator with input/output
// cardinalities, self and subtree page I/O, and wall time.
func runTraced(dir *core.Directory, text string, quiet bool) {
	res, root, err := dir.SearchTraced(text)
	if err != nil {
		fatal(err)
	}
	if !quiet {
		for _, e := range res.Entries {
			fmt.Println(e)
			fmt.Println()
		}
	}
	fmt.Println("execution profile:")
	root.Format(os.Stdout)
	fmt.Printf("%d entries, I/O: %s (total %d page accesses)\n",
		len(res.Entries), res.IO, res.IO.IO())
}

func runQuery(dir *core.Directory, text string, asLDAP, quiet bool) {
	var res *core.Result
	var err error
	if asLDAP {
		res, err = dir.SearchLDAP(text)
	} else {
		var lang query.Language
		if lang, err = core.Language(text); err == nil {
			fmt.Printf("query language: %s\n", lang)
			res, err = dir.Search(text)
		}
	}
	if err != nil {
		fatal(err)
	}
	if !quiet {
		for _, e := range res.Entries {
			fmt.Println(e)
			fmt.Println()
		}
	}
	fmt.Printf("%d entries, I/O: %s (total %d page accesses)\n",
		len(res.Entries), res.IO, res.IO.IO())
}

// repl reads one query per line from stdin. Lines starting with "ldap "
// use the baseline language; everything else is parsed as L0..L3.
func repl(dir *core.Directory, quiet bool) {
	fmt.Println(`dirq: one query per line ("ldap (…)" for the baseline, ctrl-D to exit)`)
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for {
		fmt.Print("> ")
		if !sc.Scan() {
			fmt.Println()
			return
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		asLDAP := false
		if strings.HasPrefix(line, "ldap ") {
			asLDAP, line = true, strings.TrimPrefix(line, "ldap ")
		}
		var res *core.Result
		var err error
		if asLDAP {
			res, err = dir.SearchLDAP(line)
		} else {
			res, err = dir.Search(line)
		}
		if err != nil {
			fmt.Println("error:", err)
			continue
		}
		if !quiet {
			for _, e := range res.Entries {
				fmt.Println("  " + e.DN().String())
			}
		}
		fmt.Printf("%d entries, %d page I/Os\n", len(res.Entries), res.IO.IO())
	}
}

func loadInstance(path, gen string, n int, seed int64) (*model.Instance, error) {
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return ldif.Read(f, nil)
	}
	switch gen {
	case "", "paper":
		return workload.PaperInstance(), nil
	case "forest":
		return workload.RandomForest(workload.ForestConfig{N: n, Seed: seed}), nil
	case "qos":
		return workload.GenQoS(workload.QoSConfig{Domains: 1 + n/50, PoliciesPerDomain: 50, Seed: seed}), nil
	case "tops":
		return workload.GenTOPS(workload.TOPSConfig{Subscribers: n, Seed: seed}), nil
	default:
		return nil, fmt.Errorf("dirq: unknown generator %q", gen)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dirq:", err)
	os.Exit(1)
}
