// Command dirgen generates synthetic network directories — the paper's
// sample data or the scalable QoS/TOPS/forest workloads — as LDIF.
//
// Usage:
//
//	dirgen -kind paper > paper.ldif
//	dirgen -kind tops -n 500 -seed 7 -o tops.ldif
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/ldif"
	"repro/internal/model"
	"repro/internal/workload"
)

func main() {
	var (
		kind      = flag.String("kind", "paper", "paper | forest | qos | tops")
		n         = flag.Int("n", 200, "size parameter")
		seed      = flag.Int64("seed", 1, "generator seed")
		vecDim    = flag.Int("vecdim", 0, "forest only: embedding dimension (0 = no embeddings)")
		vecSpread = flag.Float64("vecspread", 0.05, "forest only: intra-cluster standard deviation of per-subtree embeddings")
		out       = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()

	var in *model.Instance
	switch *kind {
	case "paper":
		in = workload.PaperInstance()
	case "forest":
		in = workload.RandomForest(workload.ForestConfig{N: *n, Seed: *seed, VecDim: *vecDim, VecSpread: *vecSpread})
	case "qos":
		in = workload.GenQoS(workload.QoSConfig{Domains: 1 + *n/50, PoliciesPerDomain: 50, Seed: *seed})
	case "tops":
		in = workload.GenTOPS(workload.TOPSConfig{Subscribers: *n, Seed: *seed})
	default:
		fmt.Fprintf(os.Stderr, "dirgen: unknown kind %q\n", *kind)
		os.Exit(2)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dirgen:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := ldif.Write(w, in); err != nil {
		fmt.Fprintln(os.Stderr, "dirgen:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "dirgen: wrote %d entries\n", in.Len())
}
