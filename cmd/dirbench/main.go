// Command dirbench runs the full reproduction-experiment suite of
// DESIGN.md — every theorem, algorithm figure and worked example of
// "Querying Network Directories" — and prints the measured tables
// recorded in EXPERIMENTS.md.
//
// Usage:
//
//	dirbench            # full preset
//	dirbench -quick     # CI-sized preset
//	dirbench -only E10  # a single experiment
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/bench"
)

func main() {
	var (
		quick = flag.Bool("quick", false, "run the CI-sized preset")
		only  = flag.String("only", "", "run a single experiment (e.g. E7, A2)")
	)
	flag.Parse()

	preset := bench.Full
	name := "full"
	if *quick {
		preset = bench.Quick
		name = "quick"
	}
	fmt.Printf("dirbench: preset %s, started %s\n\n", name, time.Now().Format(time.RFC3339))
	start := time.Now()
	shown := 0
	for _, spec := range bench.Specs {
		if *only != "" && !strings.EqualFold(spec.ID, *only) {
			continue
		}
		spec.Run(preset).Fprint(os.Stdout)
		shown++
	}
	if shown == 0 {
		fmt.Fprintf(os.Stderr, "dirbench: no experiment matches %q\n", *only)
		os.Exit(2)
	}
	fmt.Printf("dirbench: %d tables in %s\n", shown, time.Since(start).Round(time.Millisecond))
}
