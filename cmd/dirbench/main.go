// Command dirbench runs the full reproduction-experiment suite of
// DESIGN.md — every theorem, algorithm figure and worked example of
// "Querying Network Directories" — and prints the measured tables
// recorded in EXPERIMENTS.md.
//
// Usage:
//
//	dirbench            # full preset
//	dirbench -quick     # CI-sized preset
//	dirbench -only E10  # a single experiment
//	dirbench -json      # machine-readable tables (with latency percentiles) on stdout
//	dirbench -ophist    # per-operator self-I/O and wall-time histograms
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/bench"
)

func main() {
	var (
		quick  = flag.Bool("quick", false, "run the CI-sized preset")
		only   = flag.String("only", "", "run a single experiment (e.g. E7, A2)")
		asJSON = flag.Bool("json", false, "emit the tables as a JSON array on stdout")
		ophist = flag.Bool("ophist", false, "also run the traced per-operator profile (self-I/O and wall-time histograms)")
	)
	flag.Parse()

	preset := bench.Full
	name := "full"
	opN, opRounds := 4000, 20
	if *quick {
		preset = bench.Quick
		name = "quick"
		opN, opRounds = 1000, 5
	}
	if !*asJSON {
		fmt.Printf("dirbench: preset %s, started %s\n\n", name, time.Now().Format(time.RFC3339))
	}
	start := time.Now()
	var tables []*bench.Table
	for _, spec := range bench.Specs {
		if *only != "" && !strings.EqualFold(spec.ID, *only) {
			continue
		}
		t := bench.RunSpec(spec, preset)
		if !*asJSON {
			t.Fprint(os.Stdout)
		}
		tables = append(tables, t)
	}
	if *ophist {
		t := bench.OperatorProfile(opN, opRounds)
		if !*asJSON {
			t.Fprint(os.Stdout)
		}
		tables = append(tables, t)
	}
	if len(tables) == 0 {
		fmt.Fprintf(os.Stderr, "dirbench: no experiment matches %q\n", *only)
		os.Exit(2)
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(tables); err != nil {
			fmt.Fprintln(os.Stderr, "dirbench:", err)
			os.Exit(1)
		}
		return
	}
	fmt.Printf("dirbench: %d tables in %s\n", len(tables), time.Since(start).Round(time.Millisecond))
}
