// Command dirserve serves a network directory subtree over TCP using
// the line protocol of internal/dirserver, the substrate of the
// Section 8.3 distributed evaluation.
//
// Usage:
//
//	dirserve -ldif dir.ldif -addr 127.0.0.1:7001
//	dirserve -gen tops -n 300 -addr 127.0.0.1:0
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/dirserver"
	"repro/internal/ldif"
	"repro/internal/model"
	"repro/internal/workload"
)

var (
	idleTimeout  = flag.Duration("idle-timeout", 2*time.Minute, "close client connections idle longer than this (0 = never)")
	writeTimeout = flag.Duration("write-timeout", 30*time.Second, "per-response write deadline (0 = none)")
	grace        = flag.Duration("grace", 5*time.Second, "drain in-flight connections this long on shutdown before force-closing")
)

func main() {
	var (
		ldifPath = flag.String("ldif", "", "load the served directory from this LDIF file")
		snapPath = flag.String("open", "", "serve a directory snapshot (as written by dirq -save)")
		gen      = flag.String("gen", "paper", "or generate: paper | forest | qos | tops")
		n        = flag.Int("n", 200, "size parameter for generated directories")
		seed     = flag.Int64("seed", 1, "generator seed")
		addr     = flag.String("addr", "127.0.0.1:7001", "listen address")
	)
	flag.Parse()

	if *snapPath != "" {
		f, err := os.Open(*snapPath)
		if err != nil {
			fatal(err)
		}
		dir, err := core.OpenSnapshot(f, core.Options{})
		f.Close()
		if err != nil {
			fatal(err)
		}
		serve(dir, *addr)
		return
	}

	var in *model.Instance
	var err error
	if *ldifPath != "" {
		f, ferr := os.Open(*ldifPath)
		if ferr != nil {
			fatal(ferr)
		}
		in, err = ldif.Read(f, nil)
		f.Close()
	} else {
		switch *gen {
		case "paper":
			in = workload.PaperInstance()
		case "forest":
			in = workload.RandomForest(workload.ForestConfig{N: *n, Seed: *seed})
		case "qos":
			in = workload.GenQoS(workload.QoSConfig{Domains: 1 + *n/50, PoliciesPerDomain: 50, Seed: *seed})
		case "tops":
			in = workload.GenTOPS(workload.TOPSConfig{Subscribers: *n, Seed: *seed})
		default:
			err = fmt.Errorf("unknown generator %q", *gen)
		}
	}
	if err != nil {
		fatal(err)
	}
	dir, err := core.Open(in, core.Options{})
	if err != nil {
		fatal(err)
	}
	serve(dir, *addr)
}

func serve(dir *core.Directory, addr string) {
	srv, err := dirserver.ServeWith(dir, addr, dirserver.ServerConfig{
		IdleTimeout:  *idleTimeout,
		WriteTimeout: *writeTimeout,
		Grace:        *grace,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("dirserve: %d entries on %s\n", dir.Count(), srv.Addr())

	// SIGINT for interactive use, SIGTERM for process managers: both
	// drain in-flight connections for up to -grace, then force-close.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	s := <-sig
	fmt.Printf("dirserve: %v — draining for up to %v\n", s, *grace)
	_ = srv.Close()
	fmt.Println("dirserve: shut down")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dirserve:", err)
	os.Exit(1)
}
