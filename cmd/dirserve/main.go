// Command dirserve serves a network directory subtree over TCP using
// the line protocol of internal/dirserver, the substrate of the
// Section 8.3 distributed evaluation.
//
// Usage:
//
//	dirserve -ldif dir.ldif -addr 127.0.0.1:7001
//	dirserve -gen tops -n 300 -addr 127.0.0.1:0
//
// With -admin an HTTP listener exposes Prometheus /metrics, a JSON
// /statusz, /debug/pprof, and the query flight recorder at
// /debug/queries — the last -flight completed query traces (full span
// trees, canonical query, generation, result hash), filterable by
// ?min_ms= / ?min_io= / ?errors=1 and fetchable in full by ?trace=ID;
// -slowlog emits one-line JSON (now carrying the generation and trace
// ID) for every query crossing the -slow-ms or -slow-io threshold (and
// every failed query):
//
//	dirserve -gen forest -n 2000 -admin 127.0.0.1:9090 -flight 512 -slowlog slow.jsonl -slow-ms 50
//
// With -data the directory is durable: on boot the newest intact
// checkpoint generation is recovered (corrupt ones are verified against
// their checksums and rolled past); -gen/-ldif/-open only seed an empty
// store. With -mutable the server accepts "add"/"del" requests, and
// with -checkpoint-every 0 each one is checkpointed through the
// write-temp → fsync → rename → fsync-dir protocol before it is
// acknowledged — an acked write survives kill -9. A positive
// -checkpoint-every trades that guarantee for amortized periodic
// checkpoints; SIGTERM always takes a final checkpoint after draining.
//
//	dirserve -gen paper -data /var/lib/dirkit -mutable -checkpoint-every 0
//
// With -data the server also keeps a durable query-statistics store
// under DATA/qstats: every served query is traced and folded into
// per-(operator, scope-depth, atomic-class) profiles that are recovered
// on boot, checkpointed periodically and at shutdown, exported on
// /metrics as dirkit_qstats_*, and surfaced by EXPLAIN's
// observed-vs-estimated columns.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/dirserver"
	"repro/internal/durable"
	"repro/internal/engine"
	"repro/internal/faultfs"
	"repro/internal/ldif"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/pager"
	"repro/internal/qstats"
	"repro/internal/workload"
)

var (
	idleTimeout  = flag.Duration("idle-timeout", 2*time.Minute, "close client connections idle longer than this (0 = never)")
	writeTimeout = flag.Duration("write-timeout", 30*time.Second, "per-response write deadline (0 = none)")
	grace        = flag.Duration("grace", 5*time.Second, "drain in-flight connections this long on shutdown before force-closing")
	adminAddr    = flag.String("admin", "", "HTTP admin listener address for /metrics, /statusz, /debug/pprof (off when empty)")
	slowlogPath  = flag.String("slowlog", "", `slow-query log destination: a file path, or "stderr" (off when empty)`)
	slowMs       = flag.Duration("slow-ms", 100*time.Millisecond, "log queries at least this slow (0 disables the latency threshold)")
	slowIO       = flag.Int64("slow-io", 0, "log queries costing at least this many page I/Os (0 disables the I/O threshold)")
	cacheBytes   = flag.Int64("cache", 0, "enable the served directory's query-result cache with this byte budget (0 = off)")
	workers      = flag.Int("workers", 1, "evaluate independent query subtrees on up to this many goroutines (1 = serial; see DESIGN.md §9)")
	optimize     = flag.Bool("optimize", false, "run the algebraic planner on every served query")
	adaptive     = flag.Bool("adaptive", false, "run the cost-based adaptive planner on every served query, calibrated from the qstats store (implies -optimize)")
	flightN      = flag.Int("flight", 256, "retain the last N completed query traces in the flight recorder at /debug/queries (0 = off)")
	qstatsEvery  = flag.Duration("qstats-every", 30*time.Second, "checkpoint cadence for the durable query-statistics store under -data/qstats")

	dataDir   = flag.String("data", "", "durable store directory: recover on boot, checkpoint while serving (off when empty)")
	ckptEvery = flag.Duration("checkpoint-every", 0, "checkpoint cadence: 0 = synchronously before acknowledging each write, >0 = periodic background checkpoints")
	keepGens  = flag.Int("keep", 0, "checkpoint generations to retain for rollback (0 = the durable store's default)")
	mutable   = flag.Bool("mutable", false, `accept "add" and "del" requests (read-only without it)`)
	deltaCkpt = flag.Bool("delta-checkpoints", false, "checkpoint writes as page deltas against the previous generation when possible (full images otherwise)")
	faultProb = flag.Float64("fault-prob", 0, "inject storage faults (torn/short writes, fsync errors) with this probability — crash-harness use only")
	faultSeed = flag.Int64("fault-seed", 1, "deterministic seed for -fault-prob injection")
)

// options assembles the served directory's core.Options from the flags.
func options() core.Options {
	return core.Options{CacheBytes: *cacheBytes, Optimize: *optimize, Adaptive: *adaptive,
		DeltaCheckpoints: *deltaCkpt, Engine: engine.Config{Workers: *workers}}
}

func main() {
	var (
		ldifPath = flag.String("ldif", "", "load the served directory from this LDIF file")
		snapPath = flag.String("open", "", "serve a directory snapshot (as written by dirq -save)")
		gen      = flag.String("gen", "paper", "or generate: paper | forest | qos | tops")
		n        = flag.Int("n", 200, "size parameter for generated directories")
		seed     = flag.Int64("seed", 1, "generator seed")
		addr     = flag.String("addr", "127.0.0.1:7001", "listen address")
	)
	flag.Parse()

	// Open the durable store first: an existing checkpoint beats every
	// bootstrap source, so a restart resumes the durable lineage rather
	// than regenerating from -gen and forking history.
	var ds *durable.Store
	if *dataDir != "" {
		var err error
		if ds, err = openDurable(); err != nil {
			fatal(err)
		}
		dir, info, err := core.Recover(ds, options())
		if err != nil {
			fatal(err)
		}
		if !info.Fresh {
			fmt.Printf("dirserve: recovered generation %d from %s (skipped %d corrupt)\n", info.Gen, *dataDir, info.Skipped)
			serve(dir, ds, *addr)
			return
		}
		// Fresh store: fall through to the bootstrap sources below; the
		// seeded directory is checkpointed as generation 1 before serving.
	}

	if *snapPath != "" {
		f, err := os.Open(*snapPath)
		if err != nil {
			fatal(err)
		}
		dir, err := core.OpenSnapshot(f, options())
		f.Close()
		if err != nil {
			fatal(err)
		}
		serve(dir, ds, *addr)
		return
	}

	var in *model.Instance
	var err error
	if *ldifPath != "" {
		f, ferr := os.Open(*ldifPath)
		if ferr != nil {
			fatal(ferr)
		}
		in, err = ldif.Read(f, nil)
		f.Close()
	} else {
		switch *gen {
		case "paper":
			in = workload.PaperInstance()
		case "forest":
			in = workload.RandomForest(workload.ForestConfig{N: *n, Seed: *seed})
		case "qos":
			in = workload.GenQoS(workload.QoSConfig{Domains: 1 + *n/50, PoliciesPerDomain: 50, Seed: *seed})
		case "tops":
			in = workload.GenTOPS(workload.TOPSConfig{Subscribers: *n, Seed: *seed})
		default:
			err = fmt.Errorf("unknown generator %q", *gen)
		}
	}
	if err != nil {
		fatal(err)
	}
	dir, err := core.Open(in, options())
	if err != nil {
		fatal(err)
	}
	serve(dir, ds, *addr)
}

// openDurable opens (creating if needed) the -data checkpoint store,
// removing any *.tmp residue a crash left behind. With -fault-prob the
// filesystem is wrapped in the deterministic fault injector — the crash
// harness's way of testing the commit protocol against torn writes and
// failing fsyncs.
func openDurable() (*durable.Store, error) {
	fs, err := pager.DirFS(*dataDir)
	if err != nil {
		return nil, err
	}
	if *faultProb > 0 {
		fs = faultfs.Wrap(fs, faultfs.Config{
			Seed:       *faultSeed,
			TornWrite:  *faultProb,
			ShortWrite: *faultProb / 2,
			SyncErr:    *faultProb / 2,
		})
	}
	return durable.Open(fs, durable.Options{Keep: *keepGens})
}

// slowLog builds the slow-query log from the -slowlog/-slow-ms/-slow-io
// flags (nil when disabled — the server treats a nil SlowLog as off).
func slowLog() *obs.SlowLog {
	if *slowlogPath == "" {
		return nil
	}
	w := os.Stderr
	if *slowlogPath != "stderr" {
		f, err := os.OpenFile(*slowlogPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fatal(err)
		}
		w = f
	}
	return obs.NewSlowLog(w, *slowMs, *slowIO)
}

func serve(dir *core.Directory, ds *durable.Store, addr string) {
	reg := obs.NewRegistry()
	dir.RegisterMetrics(reg)
	var flight *obs.FlightRecorder
	if *flightN > 0 {
		flight = obs.NewFlightRecorder(*flightN)
		flight.RegisterMetrics(reg, "dirkit_flight")
	}
	cfg := dirserver.ServerConfig{
		IdleTimeout:  *idleTimeout,
		WriteTimeout: *writeTimeout,
		Grace:        *grace,
		Mutable:      *mutable,
		Metrics:      obs.NewQueryMetrics(reg, "dirkit_server"),
		SlowLog:      slowLog(),
		Flight:       flight,
	}

	// A durable -data directory also persists the query-statistics
	// store: recovered before the first query, checkpointed on a cadence
	// and once more at shutdown. Corruption is never fatal — statistics
	// are advisory, so an unrecoverable store just starts empty.
	var qs *qstats.Store
	var qds *durable.Store
	qsStop := make(chan struct{})
	qsDone := make(chan struct{})
	if *dataDir != "" {
		qfs, err := pager.DirFS(filepath.Join(*dataDir, "qstats"))
		if err != nil {
			fatal(err)
		}
		if qds, err = durable.Open(qfs, durable.Options{Keep: *keepGens}); err != nil {
			fatal(err)
		}
		qs = qstats.New()
		if gen, err := qs.Recover(qds); err != nil {
			fmt.Fprintln(os.Stderr, "dirserve: qstats recover (starting empty):", err)
			qs = qstats.New()
		} else if gen > 0 {
			fmt.Printf("dirserve: qstats recovered generation %d (%d traces folded)\n", gen, qs.Folded())
		}
		dir.SetQueryStats(qs)
		qs.RegisterMetrics(reg, "dirkit_qstats")
		go func() {
			defer close(qsDone)
			t := time.NewTicker(*qstatsEvery)
			defer t.Stop()
			for {
				select {
				case <-qsStop:
					return
				case <-t.C:
					if _, err := qs.Checkpoint(qds); err != nil {
						fmt.Fprintln(os.Stderr, "dirserve: qstats checkpoint:", err)
					}
				}
			}
		}()
	} else {
		close(qsDone)
	}
	ckptStop := make(chan struct{})
	ckptDone := make(chan struct{})
	if ds != nil {
		ds.RegisterMetrics(reg, "dirkit_durable")
		// Seed generation 1 before listening: a server that crashes on
		// its very first write still has a rung to recover to.
		if _, err := dir.Checkpoint(ds); err != nil {
			fatal(err)
		}
		if *ckptEvery == 0 {
			// Durable acks: the write path checkpoints synchronously
			// before replying, so an acknowledged add/del survives
			// kill -9 from the instant the client sees it.
			cfg.AfterUpdate = func() error {
				_, err := dir.Checkpoint(ds)
				return err
			}
			close(ckptDone)
		} else {
			// Amortized mode: a background loop checkpoints on a cadence;
			// writes between ticks are acknowledged from memory only.
			go func() {
				defer close(ckptDone)
				t := time.NewTicker(*ckptEvery)
				defer t.Stop()
				for {
					select {
					case <-ckptStop:
						return
					case <-t.C:
						if _, err := dir.Checkpoint(ds); err != nil {
							fmt.Fprintln(os.Stderr, "dirserve: checkpoint:", err)
						}
					}
				}
			}()
		}
	} else {
		close(ckptDone)
	}
	srv, err := dirserver.ServeWith(dir, addr, cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("dirserve: %d entries on %s\n", dir.Count(), srv.Addr())

	if *adminAddr != "" {
		admin, err := obs.ServeAdminWith(*adminAddr, reg, func() any {
			return map[string]any{
				"addr":       srv.Addr(),
				"entries":    dir.Count(),
				"generation": dir.Generation(),
			}
		}, flight)
		if err != nil {
			fatal(err)
		}
		defer admin.Close()
		fmt.Printf("dirserve: admin on http://%s (/metrics, /statusz, /debug/pprof, /debug/queries)\n", admin.Addr())
	}

	// SIGINT for interactive use, SIGTERM for process managers: both
	// drain in-flight connections for up to -grace, then force-close.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	s := <-sig
	fmt.Printf("dirserve: %v — draining for up to %v\n", s, *grace)
	_ = srv.Close()
	if ds != nil {
		// The drain above completed or excluded every in-flight Update;
		// one final checkpoint makes whatever generation survived the
		// drain durable. The background loop is stopped first so the two
		// never race on a half-drained state.
		close(ckptStop)
		<-ckptDone
		if gen, err := dir.Checkpoint(ds); err != nil {
			fmt.Fprintln(os.Stderr, "dirserve: final checkpoint:", err)
		} else {
			fmt.Printf("dirserve: checkpointed generation %d\n", gen)
		}
	}
	if qds != nil {
		close(qsStop)
		<-qsDone
		if gen, err := qs.Checkpoint(qds); err != nil {
			fmt.Fprintln(os.Stderr, "dirserve: final qstats checkpoint:", err)
		} else {
			fmt.Printf("dirserve: qstats checkpointed generation %d (%d traces folded)\n", gen, qs.Folded())
		}
	}
	fmt.Println("dirserve: shut down")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dirserve:", err)
	os.Exit(1)
}
