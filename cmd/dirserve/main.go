// Command dirserve serves a network directory subtree over TCP using
// the line protocol of internal/dirserver, the substrate of the
// Section 8.3 distributed evaluation.
//
// Usage:
//
//	dirserve -ldif dir.ldif -addr 127.0.0.1:7001
//	dirserve -gen tops -n 300 -addr 127.0.0.1:0
//
// With -admin an HTTP listener exposes Prometheus /metrics, a JSON
// /statusz, and /debug/pprof; -slowlog emits one-line JSON for every
// query crossing the -slow-ms or -slow-io threshold (and every failed
// query):
//
//	dirserve -gen forest -n 2000 -admin 127.0.0.1:9090 -slowlog slow.jsonl -slow-ms 50
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/dirserver"
	"repro/internal/engine"
	"repro/internal/ldif"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/workload"
)

var (
	idleTimeout  = flag.Duration("idle-timeout", 2*time.Minute, "close client connections idle longer than this (0 = never)")
	writeTimeout = flag.Duration("write-timeout", 30*time.Second, "per-response write deadline (0 = none)")
	grace        = flag.Duration("grace", 5*time.Second, "drain in-flight connections this long on shutdown before force-closing")
	adminAddr    = flag.String("admin", "", "HTTP admin listener address for /metrics, /statusz, /debug/pprof (off when empty)")
	slowlogPath  = flag.String("slowlog", "", `slow-query log destination: a file path, or "stderr" (off when empty)`)
	slowMs       = flag.Duration("slow-ms", 100*time.Millisecond, "log queries at least this slow (0 disables the latency threshold)")
	slowIO       = flag.Int64("slow-io", 0, "log queries costing at least this many page I/Os (0 disables the I/O threshold)")
	cacheBytes   = flag.Int64("cache", 0, "enable the served directory's query-result cache with this byte budget (0 = off)")
	workers      = flag.Int("workers", 1, "evaluate independent query subtrees on up to this many goroutines (1 = serial; see DESIGN.md §9)")
)

// options assembles the served directory's core.Options from the flags.
func options() core.Options {
	return core.Options{CacheBytes: *cacheBytes, Engine: engine.Config{Workers: *workers}}
}

func main() {
	var (
		ldifPath = flag.String("ldif", "", "load the served directory from this LDIF file")
		snapPath = flag.String("open", "", "serve a directory snapshot (as written by dirq -save)")
		gen      = flag.String("gen", "paper", "or generate: paper | forest | qos | tops")
		n        = flag.Int("n", 200, "size parameter for generated directories")
		seed     = flag.Int64("seed", 1, "generator seed")
		addr     = flag.String("addr", "127.0.0.1:7001", "listen address")
	)
	flag.Parse()

	if *snapPath != "" {
		f, err := os.Open(*snapPath)
		if err != nil {
			fatal(err)
		}
		dir, err := core.OpenSnapshot(f, options())
		f.Close()
		if err != nil {
			fatal(err)
		}
		serve(dir, *addr)
		return
	}

	var in *model.Instance
	var err error
	if *ldifPath != "" {
		f, ferr := os.Open(*ldifPath)
		if ferr != nil {
			fatal(ferr)
		}
		in, err = ldif.Read(f, nil)
		f.Close()
	} else {
		switch *gen {
		case "paper":
			in = workload.PaperInstance()
		case "forest":
			in = workload.RandomForest(workload.ForestConfig{N: *n, Seed: *seed})
		case "qos":
			in = workload.GenQoS(workload.QoSConfig{Domains: 1 + *n/50, PoliciesPerDomain: 50, Seed: *seed})
		case "tops":
			in = workload.GenTOPS(workload.TOPSConfig{Subscribers: *n, Seed: *seed})
		default:
			err = fmt.Errorf("unknown generator %q", *gen)
		}
	}
	if err != nil {
		fatal(err)
	}
	dir, err := core.Open(in, options())
	if err != nil {
		fatal(err)
	}
	serve(dir, *addr)
}

// slowLog builds the slow-query log from the -slowlog/-slow-ms/-slow-io
// flags (nil when disabled — the server treats a nil SlowLog as off).
func slowLog() *obs.SlowLog {
	if *slowlogPath == "" {
		return nil
	}
	w := os.Stderr
	if *slowlogPath != "stderr" {
		f, err := os.OpenFile(*slowlogPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fatal(err)
		}
		w = f
	}
	return obs.NewSlowLog(w, *slowMs, *slowIO)
}

func serve(dir *core.Directory, addr string) {
	reg := obs.NewRegistry()
	dir.RegisterMetrics(reg)
	srv, err := dirserver.ServeWith(dir, addr, dirserver.ServerConfig{
		IdleTimeout:  *idleTimeout,
		WriteTimeout: *writeTimeout,
		Grace:        *grace,
		Metrics:      obs.NewQueryMetrics(reg, "dirkit_server"),
		SlowLog:      slowLog(),
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("dirserve: %d entries on %s\n", dir.Count(), srv.Addr())

	if *adminAddr != "" {
		admin, err := obs.ServeAdmin(*adminAddr, reg, func() any {
			return map[string]any{
				"addr":       srv.Addr(),
				"entries":    dir.Count(),
				"generation": dir.Generation(),
			}
		})
		if err != nil {
			fatal(err)
		}
		defer admin.Close()
		fmt.Printf("dirserve: admin on http://%s (/metrics, /statusz, /debug/pprof)\n", admin.Addr())
	}

	// SIGINT for interactive use, SIGTERM for process managers: both
	// drain in-flight connections for up to -grace, then force-close.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	s := <-sig
	fmt.Printf("dirserve: %v — draining for up to %v\n", s, *grace)
	_ = srv.Close()
	fmt.Println("dirserve: shut down")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dirserve:", err)
	os.Exit(1)
}
