// QoS policy administration (Example 2.1 of the paper): a policy
// enforcement point — a router at the edge of the research subnet —
// consults the directory for each flow it sees. The directory holds
// SLAPolicyRules with priorities and exceptions (Figure 12); the
// enforcement answer is the set of actions of the matching policies
// after priority and exception conflict resolution.
package main

import (
	"fmt"
	"log"

	"repro/internal/apps/qos"
	"repro/internal/core"
	"repro/internal/workload"
)

func main() {
	dir, err := core.Open(workload.PaperInstance(), core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	const domain = "dc=research, dc=att, dc=com"

	packets := []struct {
		label string
		p     qos.Packet
	}{
		{"weekend data flow from the lsplitOff range", qos.Packet{
			SourceAddress: "204.178.16.5", DestinationPort: 8080,
			Time: 19980704120000, DayOfWeek: 6}},
		{"weekend SMTP from the same range (mail exception)", qos.Packet{
			SourceAddress: "204.178.16.5", DestinationPort: 25,
			Time: 19980704120000, DayOfWeek: 6}},
		{"weekend FTP from the same range (fatt exception)", qos.Packet{
			SourceAddress: "204.178.16.5", DestinationPort: 21,
			Time: 19980704120000, DayOfWeek: 6}},
		{"Tuesday traffic (outside dso's validity periods)", qos.Packet{
			SourceAddress: "204.178.16.5", DestinationPort: 8080,
			Time: 19980707100000, DayOfWeek: 2}},
		{"traffic from an unrelated source", qos.Packet{
			SourceAddress: "9.9.9.9", DestinationPort: 80,
			Time: 19980704120000, DayOfWeek: 6}},
	}

	for _, c := range packets {
		d, err := qos.Match(dir, domain, c.p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("packet: %s\n", c.label)
		if len(d.Policies) == 0 {
			fmt.Println("    no policy applies (default forwarding)")
		}
		for _, pol := range d.Policies {
			fmt.Printf("    policy %s\n", pol.DN().RDN())
		}
		for _, act := range d.Actions {
			perm, _ := act.First("DSPermission")
			fmt.Printf("    action %s -> %s\n", act.DN().RDN(), perm)
		}
		if d.Conflict {
			fmt.Println("    WARNING: conflicting actions — directory population should have resolved this")
		}
		fmt.Println()
	}

	// The administrator's own maintenance queries, straight from the
	// paper: which policies carry more than one validity period, and
	// what does the highest-priority SMTP-governing policy do?
	res, err := dir.Search(`(g (dc=research, dc=att, dc=com ? sub ? objectClass=SLAPolicyRules)
	                           count(SLAPVPRef) > 1)`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("policies with >1 validity period: %v\n", res.DNs())

	res, err = dir.Search(`(dv (dc=att, dc=com ? sub ? objectClass=SLADSAction)
	                           (g (vd (dc=att, dc=com ? sub ? objectClass=SLAPolicyRules)
	                                  (& (dc=att, dc=com ? sub ? destinationPort=25)
	                                     (dc=att, dc=com ? sub ? objectClass=trafficProfile))
	                                  SLATPRef)
	                              min(SLARulePriority)=min(min(SLARulePriority)))
	                           SLADSActRef)`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("action of the top-priority SMTP policy: %v\n", res.DNs())
}
