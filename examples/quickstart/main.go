// Quickstart: build a small network directory, then walk up the query
// language hierarchy of "Querying Network Directories" — an atomic
// query, an L0 difference (Example 4.1), an L1 hierarchical selection
// (Example 5.1), an L2 aggregate selection (Example 6.2), and an L3
// embedded-reference query (Example 7.1) — printing each answer and the
// page I/O it cost.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/workload"
)

func main() {
	// The directory of the paper's figures: the DNS-style upper levels
	// (Fig 1), the TOPS subscriber subtree (Fig 11), and the QoS policy
	// repository (Fig 12).
	dir, err := core.Open(workload.PaperInstance(), core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("directory holds %d entries\n\n", dir.Count())

	run := func(title, q string) {
		lang, err := core.Language(q)
		if err != nil {
			log.Fatal(err)
		}
		res, err := dir.Search(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("--- %s [%s]\n%s\n", title, lang, q)
		for _, dn := range res.DNs() {
			fmt.Printf("    -> %s\n", dn)
		}
		fmt.Printf("    (%d entries, %d page I/Os)\n\n", len(res.Entries), res.IO.IO())
	}

	run("atomic: everyone named jagadish",
		`(dc=com ? sub ? surName=jagadish)`)

	run("L0 difference (Example 4.1): org units outside networkPolicies",
		`(- (dc=research, dc=att, dc=com ? sub ? objectClass=organizationalUnit)
		    (ou=networkPolicies, dc=research, dc=att, dc=com ? sub ? objectClass=organizationalUnit))`)

	run("L1 children (Example 5.1 shape): subscribers with a weekend QHP",
		`(c (dc=att, dc=com ? sub ? objectClass=TOPSSubscriber)
		    (dc=att, dc=com ? sub ? QHPName=weekend))`)

	run("L2 aggregate (Example 6.1): policies with more than one validity period",
		`(g (dc=research, dc=att, dc=com ? sub ? objectClass=SLAPolicyRules)
		    count(SLAPVPRef) > 1)`)

	run("L3 valueDN (Example 7.1): policies whose profiles govern SMTP",
		`(vd (dc=att, dc=com ? sub ? objectClass=SLAPolicyRules)
		     (& (dc=att, dc=com ? sub ? destinationPort=25)
		        (dc=att, dc=com ? sub ? objectClass=trafficProfile))
		     SLATPRef)`)

	// The LDAP baseline for comparison: one base, one scope, one
	// composite filter.
	res, err := dir.SearchLDAP(`(dc=com ? sub ? (&(objectClass=QHP)(priority<=1)))`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("--- LDAP baseline: high-priority QHPs: %d entries, %d page I/Os\n",
		len(res.Entries), res.IO.IO())
}
