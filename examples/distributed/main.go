// Distributed directories (Sections 3.3 and 8.3 of the paper): the
// hierarchical namespace is delegated DNS-style across directory
// servers; a query posed at one server ships each atomic sub-query to
// the server owning its base DN, then combines the sorted results
// locally. This example splits the paper's sample directory in two,
// serves both halves over TCP, runs federated queries, and scrapes the
// coordinator's /statusz admin endpoint through the chaos sequence —
// watching the breaker and cache counters move as replicas die.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"time"

	"repro/internal/core"
	"repro/internal/dirserver"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/workload"
)

// scrapeStatusz pulls the admin endpoint the way an operator (or a
// collector) would — over HTTP, not via in-process method calls.
func scrapeStatusz(addr string) (metrics map[string]any, status map[string]any) {
	res, err := http.Get("http://" + addr + "/statusz")
	if err != nil {
		log.Fatal(err)
	}
	defer res.Body.Close()
	var doc struct {
		Metrics map[string]any `json:"metrics"`
		Status  map[string]any `json:"status"`
	}
	if err := json.NewDecoder(res.Body).Decode(&doc); err != nil {
		log.Fatal(err)
	}
	return doc.Metrics, doc.Status
}

// report prints one scraped snapshot: breaker states plus the
// distributed-evaluation counters that moved during the chaos.
func report(stage, adminAddr string) {
	metrics, status := scrapeStatusz(adminAddr)
	fmt.Printf("[%s] /statusz:\n", stage)
	fmt.Printf("    breakers: primary=%v secondary=%v\n", status["breaker_primary"], status["breaker_secondary"])
	for _, k := range []string{
		"dirkit_coord_remote_atomics", "dirkit_coord_retries", "dirkit_coord_failovers",
		"dirkit_coord_breaker_trips", "dirkit_coord_breaker_skips",
		"dirkit_coord_cache_hits", "dirkit_coord_cache_masked",
	} {
		fmt.Printf("    %s = %v\n", k, metrics[k])
	}
	fmt.Println()
}

func main() {
	full := workload.PaperInstance()
	schema := full.Schema()

	// Partition along Figure 1's administrative boundary: the research
	// networkPolicies subtree goes to its own server.
	polRoot := model.MustParseDN("ou=networkPolicies, dc=research, dc=att, dc=com")
	upperIn := model.NewInstance(schema)
	polIn := model.NewInstance(schema)
	for _, e := range full.Entries() {
		if polRoot.IsAncestorOf(e.DN()) || polRoot.Equal(e.DN()) {
			polIn.MustAdd(e.Clone())
		} else {
			upperIn.MustAdd(e.Clone())
		}
	}

	upperDir, err := core.Open(upperIn, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	polDir, err := core.Open(polIn, core.Options{})
	if err != nil {
		log.Fatal(err)
	}

	upperSrv, err := dirserver.Serve(upperDir, "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer upperSrv.Close()
	polSrv, err := dirserver.Serve(polDir, "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer polSrv.Close()
	// A second replica of the policies subtree — the paper's footnote 4
	// secondary server ("one unreachable network will not necessarily
	// cut off network directory service").
	polDir2, err := core.Open(polIn, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	polSrv2, err := dirserver.Serve(polDir2, "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer polSrv2.Close()
	fmt.Printf("server A (%d entries, upper levels + userProfiles): %s\n", upperDir.Count(), upperSrv.Addr())
	fmt.Printf("server B (%d entries, networkPolicies subtree):     %s\n", polDir.Count(), polSrv.Addr())
	fmt.Printf("server B' (%d entries, secondary replica of B):     %s\n", polDir2.Count(), polSrv2.Addr())

	// DNS-style delegation registry: primary first, secondary after.
	var reg dirserver.Registry
	reg.Register(model.MustParseDN("dc=com"), upperSrv.Addr())
	reg.Register(polRoot, polSrv.Addr(), polSrv2.Addr())
	for _, z := range reg.Zones() {
		fmt.Println("delegation:", z)
	}
	fmt.Println()

	// Pose federated queries at server A. The coordinator's pooled
	// client enforces deadlines and retries transient failures; tight
	// timeouts keep the failover demo below snappy.
	// A short cache TTL keeps the fresh-hit path from hiding the
	// failover below, while outage masking (which ignores the TTL)
	// still works; Threshold 1 trips breakers on the first failure so
	// the /statusz scrapes show the transitions immediately.
	coord := dirserver.NewCoordinatorWith(upperDir, &reg, upperSrv.Addr(), dirserver.CoordinatorConfig{
		Client: dirserver.ClientConfig{
			DialTimeout:    500 * time.Millisecond,
			RequestTimeout: time.Second,
			MaxRetries:     1,
		},
		Breaker:    dirserver.BreakerConfig{Threshold: 1, Cooldown: 30 * time.Second},
		CacheBytes: 1 << 20,
		CacheTTL:   50 * time.Millisecond,
	})
	defer coord.Close()

	// The observability surface: the coordinator's counters as
	// pull-based gauges on an HTTP admin listener, with live breaker
	// states in the /statusz status section.
	obsReg := obs.NewRegistry()
	coord.RegisterMetrics(obsReg, "dirkit_coord")
	admin, err := obs.ServeAdmin("127.0.0.1:0", obsReg, func() any {
		return map[string]any{
			"breaker_primary":   coord.BreakerState(polSrv.Addr()),
			"breaker_secondary": coord.BreakerState(polSrv2.Addr()),
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	defer admin.Close()
	fmt.Printf("admin endpoint: http://%s (/metrics, /statusz, /debug/pprof)\n\n", admin.Addr())
	queries := []string{
		// Entirely remote: policies live on server B.
		`(g (ou=networkPolicies, dc=research, dc=att, dc=com ? sub ? objectClass=SLAPolicyRules)
		    count(SLAPVPRef) > 1)`,
		// Mixed: subscribers on A, actions on B, one boolean query.
		`(| (dc=com ? sub ? objectClass=TOPSSubscriber)
		    (ou=networkPolicies, dc=research, dc=att, dc=com ? sub ? objectClass=SLADSAction))`,
		// L3 across the wire: policies and their SMTP profiles, both on B,
		// coordinated from A.
		`(vd (ou=networkPolicies, dc=research, dc=att, dc=com ? sub ? objectClass=SLAPolicyRules)
		     (ou=networkPolicies, dc=research, dc=att, dc=com ? sub ? destinationPort=25)
		     SLATPRef)`,
	}
	ctx := context.Background()
	for _, q := range queries {
		entries, err := coord.Search(ctx, q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("federated query:\n%s\n", q)
		for _, e := range entries {
			fmt.Printf("    -> %s\n", e.DN())
		}
		fmt.Println()
	}

	report("healthy", admin.Addr())

	// Footnote 4 in action: kill the primary policies server and pose
	// the same federated query — the coordinator's failover serves it
	// from the secondary replica, and the scraped breaker counters show
	// the primary tripping open.
	fmt.Println("killing the primary policies server...")
	_ = polSrv.Close()
	time.Sleep(60 * time.Millisecond) // let cached answers age past the TTL
	entries, err := coord.Search(ctx, queries[0])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query after primary loss still answered (%d entries) via the secondary\n\n", len(entries))
	report("primary down", admin.Addr())

	// Kill the secondary too: the whole zone is unreachable, and the
	// coordinator serves the generation-current cached answer instead —
	// the cache masking the outage.
	fmt.Println("killing the secondary policies server as well...")
	_ = polSrv2.Close()
	time.Sleep(60 * time.Millisecond)
	entries, err = coord.Search(ctx, queries[0])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query with the whole zone down still answered (%d entries) from the result cache\n\n", len(entries))
	report("zone down, cache-masked", admin.Addr())

	st := coord.Stats()
	fmt.Printf("remote atomics: %d  retries: %d  failovers: %d  breaker trips: %d  cache hits: %d  cache masked: %d\n",
		st.RemoteAtomics, st.Retries, st.Failovers, st.BreakerTrips, st.CacheHits, st.CacheMasked)
}
