// Distributed directories (Sections 3.3 and 8.3 of the paper): the
// hierarchical namespace is delegated DNS-style across directory
// servers; a query posed at one server ships each atomic sub-query to
// the server owning its base DN, then combines the sorted results
// locally. This example splits the paper's sample directory in two,
// serves both halves over TCP, and runs federated queries.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/dirserver"
	"repro/internal/model"
	"repro/internal/workload"
)

func main() {
	full := workload.PaperInstance()
	schema := full.Schema()

	// Partition along Figure 1's administrative boundary: the research
	// networkPolicies subtree goes to its own server.
	polRoot := model.MustParseDN("ou=networkPolicies, dc=research, dc=att, dc=com")
	upperIn := model.NewInstance(schema)
	polIn := model.NewInstance(schema)
	for _, e := range full.Entries() {
		if polRoot.IsAncestorOf(e.DN()) || polRoot.Equal(e.DN()) {
			polIn.MustAdd(e.Clone())
		} else {
			upperIn.MustAdd(e.Clone())
		}
	}

	upperDir, err := core.Open(upperIn, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	polDir, err := core.Open(polIn, core.Options{})
	if err != nil {
		log.Fatal(err)
	}

	upperSrv, err := dirserver.Serve(upperDir, "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer upperSrv.Close()
	polSrv, err := dirserver.Serve(polDir, "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer polSrv.Close()
	// A second replica of the policies subtree — the paper's footnote 4
	// secondary server ("one unreachable network will not necessarily
	// cut off network directory service").
	polDir2, err := core.Open(polIn, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	polSrv2, err := dirserver.Serve(polDir2, "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer polSrv2.Close()
	fmt.Printf("server A (%d entries, upper levels + userProfiles): %s\n", upperDir.Count(), upperSrv.Addr())
	fmt.Printf("server B (%d entries, networkPolicies subtree):     %s\n", polDir.Count(), polSrv.Addr())
	fmt.Printf("server B' (%d entries, secondary replica of B):     %s\n", polDir2.Count(), polSrv2.Addr())

	// DNS-style delegation registry: primary first, secondary after.
	var reg dirserver.Registry
	reg.Register(model.MustParseDN("dc=com"), upperSrv.Addr())
	reg.Register(polRoot, polSrv.Addr(), polSrv2.Addr())
	for _, z := range reg.Zones() {
		fmt.Println("delegation:", z)
	}
	fmt.Println()

	// Pose federated queries at server A. The coordinator's pooled
	// client enforces deadlines and retries transient failures; tight
	// timeouts keep the failover demo below snappy.
	coord := dirserver.NewCoordinatorWith(upperDir, &reg, upperSrv.Addr(), dirserver.CoordinatorConfig{
		Client: dirserver.ClientConfig{
			DialTimeout:    500 * time.Millisecond,
			RequestTimeout: time.Second,
			MaxRetries:     1,
		},
	})
	defer coord.Close()
	queries := []string{
		// Entirely remote: policies live on server B.
		`(g (ou=networkPolicies, dc=research, dc=att, dc=com ? sub ? objectClass=SLAPolicyRules)
		    count(SLAPVPRef) > 1)`,
		// Mixed: subscribers on A, actions on B, one boolean query.
		`(| (dc=com ? sub ? objectClass=TOPSSubscriber)
		    (ou=networkPolicies, dc=research, dc=att, dc=com ? sub ? objectClass=SLADSAction))`,
		// L3 across the wire: policies and their SMTP profiles, both on B,
		// coordinated from A.
		`(vd (ou=networkPolicies, dc=research, dc=att, dc=com ? sub ? objectClass=SLAPolicyRules)
		     (ou=networkPolicies, dc=research, dc=att, dc=com ? sub ? destinationPort=25)
		     SLATPRef)`,
	}
	ctx := context.Background()
	for _, q := range queries {
		entries, err := coord.Search(ctx, q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("federated query:\n%s\n", q)
		for _, e := range entries {
			fmt.Printf("    -> %s\n", e.DN())
		}
		fmt.Println()
	}

	// Footnote 4 in action: kill the primary policies server and pose
	// the same federated query — the coordinator's failover serves it
	// from the secondary replica.
	fmt.Println("killing the primary policies server...")
	_ = polSrv.Close()
	entries, err := coord.Search(ctx, queries[0])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query after primary loss still answered (%d entries) via the secondary\n\n", len(entries))

	st := coord.Stats()
	fmt.Printf("remote atomics: %d  retries: %d  failovers: %d  breaker trips: %d\n",
		st.RemoteAtomics, st.Retries, st.Failovers, st.BreakerTrips)
}
