// Distributed directories (Sections 3.3 and 8.3 of the paper): the
// hierarchical namespace is delegated DNS-style across directory
// servers; a query posed at one server ships each atomic sub-query to
// the server owning its base DN, then combines the sorted results
// locally. This example splits the paper's sample directory in two,
// serves both halves over TCP, and runs federated queries.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/dirserver"
	"repro/internal/model"
	"repro/internal/workload"
)

func main() {
	full := workload.PaperInstance()
	schema := full.Schema()

	// Partition along Figure 1's administrative boundary: the research
	// networkPolicies subtree goes to its own server.
	polRoot := model.MustParseDN("ou=networkPolicies, dc=research, dc=att, dc=com")
	upperIn := model.NewInstance(schema)
	polIn := model.NewInstance(schema)
	for _, e := range full.Entries() {
		if polRoot.IsAncestorOf(e.DN()) || polRoot.Equal(e.DN()) {
			polIn.MustAdd(e.Clone())
		} else {
			upperIn.MustAdd(e.Clone())
		}
	}

	upperDir, err := core.Open(upperIn, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	polDir, err := core.Open(polIn, core.Options{})
	if err != nil {
		log.Fatal(err)
	}

	upperSrv, err := dirserver.Serve(upperDir, "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer upperSrv.Close()
	polSrv, err := dirserver.Serve(polDir, "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer polSrv.Close()
	fmt.Printf("server A (%d entries, upper levels + userProfiles): %s\n", upperDir.Count(), upperSrv.Addr())
	fmt.Printf("server B (%d entries, networkPolicies subtree):     %s\n", polDir.Count(), polSrv.Addr())

	// DNS-style delegation registry.
	var reg dirserver.Registry
	reg.Register(model.MustParseDN("dc=com"), upperSrv.Addr())
	reg.Register(polRoot, polSrv.Addr())
	for _, z := range reg.Zones() {
		fmt.Println("delegation:", z)
	}
	fmt.Println()

	// Pose federated queries at server A.
	coord := dirserver.NewCoordinator(upperDir, &reg, upperSrv.Addr())
	queries := []string{
		// Entirely remote: policies live on server B.
		`(g (ou=networkPolicies, dc=research, dc=att, dc=com ? sub ? objectClass=SLAPolicyRules)
		    count(SLAPVPRef) > 1)`,
		// Mixed: subscribers on A, actions on B, one boolean query.
		`(| (dc=com ? sub ? objectClass=TOPSSubscriber)
		    (ou=networkPolicies, dc=research, dc=att, dc=com ? sub ? objectClass=SLADSAction))`,
		// L3 across the wire: policies and their SMTP profiles, both on B,
		// coordinated from A.
		`(vd (ou=networkPolicies, dc=research, dc=att, dc=com ? sub ? objectClass=SLAPolicyRules)
		     (ou=networkPolicies, dc=research, dc=att, dc=com ? sub ? destinationPort=25)
		     SLATPRef)`,
	}
	for _, q := range queries {
		entries, err := coord.Search(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("federated query:\n%s\n", q)
		for _, e := range entries {
			fmt.Printf("    -> %s\n", e.DN())
		}
		fmt.Println()
	}
	fmt.Printf("atomic sub-queries shipped to remote servers: %d\n", coord.RemoteAtomics())
}
