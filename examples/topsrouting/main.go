// TOPS dial-by-name (Example 2.2 of the paper): callers dial a logical
// name; the directory resolves it — through the callee's prioritized
// query handling profiles — to the call appearances where the callee
// can currently be reached (Figure 11's data: office phone during
// working hours, voice mail on weekends).
package main

import (
	"errors"
	"fmt"
	"log"

	"repro/internal/apps/tops"
	"repro/internal/core"
	"repro/internal/workload"
)

func main() {
	dir, err := core.Open(workload.PaperInstance(), core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	const base = "ou=userProfiles, dc=research, dc=att, dc=com"

	calls := []struct {
		label string
		c     tops.Call
	}{
		{"Tuesday 10:00 — working hours", tops.Call{CalleeUID: "jag", Time: 1000, DayOfWeek: 2}},
		{"Saturday 11:00 — weekend", tops.Call{CalleeUID: "jag", Time: 1100, DayOfWeek: 6}},
		{"Wednesday 03:00 — nobody home", tops.Call{CalleeUID: "jag", Time: 300, DayOfWeek: 3}},
	}
	for _, c := range calls {
		fmt.Printf("call jag, %s:\n", c.label)
		r, err := tops.Lookup(dir, base, c.c)
		if errors.Is(err, tops.ErrNoQHP) {
			fmt.Println("    no profile matches — call rejected")
			fmt.Println()
			continue
		}
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("    matched profile %s\n", r.QHP.DN().RDN())
		for i, ca := range r.Appearances {
			num, _ := ca.First("CANumber")
			to, _ := ca.First("timeOut")
			desc, _ := ca.First("description")
			fmt.Printf("    try %d: %s (timeout %ds) %s\n", i+1, num, to.Int(), desc)
		}
		fmt.Println()
	}

	// Scale it up: a synthetic subscriber base, plus the directory-side
	// maintenance query of Example 6.2 — subscribers with unusually many
	// profiles.
	big, err := core.Open(workload.GenTOPS(workload.TOPSConfig{Subscribers: 200, MaxQHPs: 6, Seed: 42}),
		core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	res, err := big.Search(`(c (dc=att, dc=com ? sub ? objectClass=TOPSSubscriber)
	                           (dc=att, dc=com ? sub ? objectClass=QHP)
	                           count($2) >= 5)`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("synthetic base: %d subscribers; %d have 5+ query handling profiles (%d page I/Os)\n",
		200, len(res.Entries), res.IO.IO())

	routed := 0
	for i := 0; i < 200; i++ {
		_, err := tops.Lookup(big, base, tops.Call{
			CalleeUID: fmt.Sprintf("sub%04d", i), Time: 930, DayOfWeek: 4})
		if err == nil {
			routed++
		}
	}
	fmt.Printf("routing sweep: %d/200 calls matched a profile\n", routed)
}
